/**
 * @file
 * geomancy_explain -- post-mortem queries over a geo-ledger-1 decision ledger.
 *
 * Usage: geomancy_explain --ledger FILE [--json] [--metrics FILE] MODE
 *
 * Modes:
 *   --why FILE@CYCLE        explain why a file moved (or did not) in a cycle
 *   --prediction-error      realized-vs-predicted throughput error (Table 3)
 *       [--per-mount]       break the error stats down per device
 *   --vetoes                histogram of ActionChecker verdicts
 *   --safe-mode-timeline    guardrail safe-mode transitions over the run
 *
 * `--metrics FILE` takes a Prometheus text snapshot written by geomancy_sim
 * (`--metrics-prom`) and cross-checks the ledger-derived per-mount error
 * stats against the in-process `ledger.dev*` gauges; a mismatch exits 2 so
 * CI can gate on ledger/metrics consistency.
 *
 * The ledger is newline-delimited JSON, so the tool carries a small
 * self-contained JSON reader rather than depending on an external library.
 */

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/table.hh"

namespace {

/* ------------------------------------------------------------------ */
/* Minimal JSON document model                                         */
/* ------------------------------------------------------------------ */

struct JsonValue
{
    enum Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue *get(const char *key) const
    {
        for (const auto &kv : fields)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }

    double num(const char *key, double fallback = 0.0) const
    {
        const JsonValue *v = get(key);
        return v && v->kind == Number ? v->number : fallback;
    }

    std::string str(const char *key) const
    {
        const JsonValue *v = get(key);
        return v && v->kind == String ? v->text : std::string();
    }

    bool flag(const char *key) const
    {
        const JsonValue *v = get(key);
        return v && v->kind == Bool && v->boolean;
    }
};

/**
 * Recursive-descent JSON parser over a single ledger line.  Strict enough
 * for machine-written rows; on malformed input it fails rather than
 * guessing.
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool parse(JsonValue &out)
    {
        pos_ = 0;
        if (!value(out))
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool literal(const char *word)
    {
        size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool value(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out.kind = JsonValue::String;
            return string(out.text);
        }
        if (c == 't') {
            out.kind = JsonValue::Bool;
            out.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Bool;
            out.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Null;
            return literal("null");
        }
        return numberValue(out);
    }

    bool numberValue(JsonValue &out)
    {
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(begin, &end);
        if (end == begin)
            return false;
        out.kind = JsonValue::Number;
        out.number = v;
        pos_ += static_cast<size_t>(end - begin);
        return true;
    }

    bool string(std::string &out)
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            char esc = text_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                /* The ledger writer never emits \u escapes; accept and
                 * substitute so a foreign file still loads. */
                if (pos_ + 4 > text_.size())
                    return false;
                pos_ += 4;
                out.push_back('?');
                break;
            }
            default: return false;
            }
        }
        return false;
    }

    bool array(JsonValue &out)
    {
        out.kind = JsonValue::Array;
        ++pos_; /* '[' */
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue item;
            if (!value(item))
                return false;
            out.items.push_back(std::move(item));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            char c = text_[pos_++];
            if (c == ']')
                return true;
            if (c != ',')
                return false;
        }
    }

    bool object(JsonValue &out)
    {
        out.kind = JsonValue::Object;
        ++pos_; /* '{' */
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (pos_ >= text_.size() || !string(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return false;
            JsonValue item;
            if (!value(item))
                return false;
            out.fields.emplace_back(std::move(key), std::move(item));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            char c = text_[pos_++];
            if (c == '}')
                return true;
            if (c != ',')
                return false;
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

/* ------------------------------------------------------------------ */
/* Ledger loading                                                      */
/* ------------------------------------------------------------------ */

struct Ledger
{
    std::vector<JsonValue> rows; ///< every row after the header, in order
};

bool
loadLedger(const std::string &path, Ledger &out, std::string &error)
{
    std::ifstream is(path);
    if (!is) {
        error = "cannot open " + path;
        return false;
    }
    std::string line;
    size_t lineNo = 0;
    uint64_t lastSeq = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        JsonValue row;
        if (!JsonParser(line).parse(row) || row.kind != JsonValue::Object) {
            error = path + ":" + std::to_string(lineNo) + ": malformed JSON";
            return false;
        }
        if (lineNo == 1) {
            if (row.str("t") != "ledger" ||
                row.str("schema") != "geo-ledger-1") {
                error = path + ": not a geo-ledger-1 file";
                return false;
            }
            continue;
        }
        uint64_t seq = static_cast<uint64_t>(row.num("seq"));
        if (seq != lastSeq + 1) {
            error = path + ":" + std::to_string(lineNo) +
                    ": sequence gap (expected " +
                    std::to_string(lastSeq + 1) + ", found " +
                    std::to_string(seq) + ")";
            return false;
        }
        lastSeq = seq;
        out.rows.push_back(std::move(row));
    }
    if (lineNo == 0) {
        error = path + ": empty ledger";
        return false;
    }
    return true;
}

/* ------------------------------------------------------------------ */
/* Shared helpers                                                      */
/* ------------------------------------------------------------------ */

std::string
fmt(double v, int precision = 4)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

struct ErrorStat
{
    uint64_t samples = 0;
    double sumAbs = 0.0;
    double sumSigned = 0.0;

    double meanAbs() const { return samples ? sumAbs / samples : 0.0; }
    double meanSigned() const { return samples ? sumSigned / samples : 0.0; }
};

/* ------------------------------------------------------------------ */
/* --why FILE@CYCLE                                                    */
/* ------------------------------------------------------------------ */

int
runWhy(const Ledger &ledger, uint64_t file, uint64_t cycle, bool json)
{
    const JsonValue *candidate = nullptr;
    const JsonValue *outcome = nullptr;
    for (const auto &row : ledger.rows) {
        if (static_cast<uint64_t>(row.num("cycle")) != cycle)
            continue;
        std::string t = row.str("t");
        if (t == "candidate" &&
            static_cast<uint64_t>(row.num("file")) == file)
            candidate = &row;
        else if (t == "outcome" &&
                 static_cast<uint64_t>(row.num("file")) == file)
            outcome = &row;
    }
    if (!candidate) {
        std::fprintf(stderr,
                     "geomancy_explain: no candidate row for file %llu in "
                     "cycle %llu\n",
                     static_cast<unsigned long long>(file),
                     static_cast<unsigned long long>(cycle));
        return 1;
    }

    std::string verdict = candidate->str("verdict");
    const JsonValue *scores = candidate->get("scores");
    if (json) {
        std::ostringstream os;
        os << "{\"file\":" << file << ",\"cycle\":" << cycle
           << ",\"verdict\":\"" << jsonEscape(verdict) << "\",\"from\":"
           << static_cast<uint64_t>(candidate->num("from"));
        if (const JsonValue *to = candidate->get("to"))
            os << ",\"to\":" << static_cast<uint64_t>(to->number);
        if (const JsonValue *gain = candidate->get("gain"))
            os << ",\"gain\":" << gain->number;
        os << ",\"random\":" << (candidate->flag("random") ? "true" : "false");
        os << ",\"scores\":[";
        if (scores && scores->kind == JsonValue::Array)
            for (size_t i = 0; i < scores->items.size(); ++i) {
                const JsonValue &s = scores->items[i];
                os << (i ? "," : "") << "{\"device\":"
                   << static_cast<uint64_t>(s.num("device"))
                   << ",\"predicted\":" << s.num("predicted")
                   << ",\"rank\":" << static_cast<uint64_t>(s.num("rank"))
                   << "}";
            }
        os << "]";
        if (outcome)
            os << ",\"outcome\":\"" << jsonEscape(outcome->str("outcome"))
               << "\",\"reason\":\"" << jsonEscape(outcome->str("reason"))
               << "\",\"attempt\":"
               << static_cast<uint64_t>(outcome->num("attempt"));
        os << "}";
        std::printf("%s\n", os.str().c_str());
        return 0;
    }

    std::printf("file %llu, cycle %llu\n",
                static_cast<unsigned long long>(file),
                static_cast<unsigned long long>(cycle));
    std::printf("  verdict: %s\n", verdict.c_str());
    std::printf("  current device: %llu\n",
                static_cast<unsigned long long>(candidate->num("from")));
    if (const JsonValue *to = candidate->get("to"))
        std::printf("  proposed target: %llu%s\n",
                    static_cast<unsigned long long>(to->number),
                    candidate->flag("random") ? " (exploration fallback)"
                                              : "");
    if (const JsonValue *gain = candidate->get("gain"))
        std::printf("  predicted relative gain: %s\n",
                    fmt(gain->number).c_str());
    if (const JsonValue *features = candidate->get("features");
        features && features->kind == JsonValue::Array) {
        std::printf("  features:");
        for (const auto &f : features->items)
            std::printf(" %g", f.number);
        std::printf("\n");
    }
    if (scores && scores->kind == JsonValue::Array) {
        geo::TextTable table("predicted throughput per device");
        table.setHeader({"device", "predicted", "rank"});
        for (const auto &s : scores->items)
            table.addRow({std::to_string(
                              static_cast<uint64_t>(s.num("device"))),
                          fmt(s.num("predicted"), 1),
                          std::to_string(
                              static_cast<uint64_t>(s.num("rank")))});
        table.print(std::cout);
    }
    if (outcome)
        std::printf("  migration outcome: %s (reason %s, attempt %llu)\n",
                    outcome->str("outcome").c_str(),
                    outcome->str("reason").c_str(),
                    static_cast<unsigned long long>(outcome->num("attempt")));
    else if (verdict == "selected" || verdict == "exploration")
        std::printf("  migration outcome: not recorded this cycle\n");
    return 0;
}

/* ------------------------------------------------------------------ */
/* --prediction-error [--per-mount]                                    */
/* ------------------------------------------------------------------ */

void
collectErrors(const Ledger &ledger, ErrorStat &overall,
              std::map<uint64_t, ErrorStat> &byDevice)
{
    for (const auto &row : ledger.rows) {
        if (row.str("t") != "realized")
            continue;
        uint64_t device = static_cast<uint64_t>(row.num("device"));
        double absErr = row.num("abs_err");
        double signedErr = row.num("signed_err");
        ErrorStat &dev = byDevice[device];
        dev.samples += 1;
        dev.sumAbs += absErr;
        dev.sumSigned += signedErr;
        overall.samples += 1;
        overall.sumAbs += absErr;
        overall.sumSigned += signedErr;
    }
}

/**
 * Cross-check ledger-derived per-mount stats against the `ledger.dev*`
 * gauges in a Prometheus snapshot.  Returns 0 on agreement, 2 on any
 * mismatch so CI can gate on it.
 */
int
checkMetrics(const std::string &path,
             const std::map<uint64_t, ErrorStat> &byDevice)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "geomancy_explain: cannot open %s\n",
                     path.c_str());
        return 1;
    }
    std::map<std::string, double> gauges;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        size_t space = line.find(' ');
        if (space == std::string::npos)
            continue;
        gauges[line.substr(0, space)] =
            std::strtod(line.c_str() + space + 1, nullptr);
    }

    int mismatches = 0;
    auto check = [&](const std::string &name, double expected) {
        auto it = gauges.find(name);
        if (it == gauges.end()) {
            std::fprintf(stderr, "  missing gauge %s\n", name.c_str());
            ++mismatches;
            return;
        }
        double tolerance = 1e-9 + 1e-6 * std::abs(expected);
        if (std::abs(it->second - expected) > tolerance) {
            std::fprintf(stderr, "  gauge %s: metrics=%.12g ledger=%.12g\n",
                         name.c_str(), it->second, expected);
            ++mismatches;
        }
    };
    for (const auto &kv : byDevice) {
        std::string prefix =
            "geo_ledger_dev" + std::to_string(kv.first) + "_";
        check(prefix + "samples", static_cast<double>(kv.second.samples));
        check(prefix + "abs_err", kv.second.meanAbs());
        check(prefix + "signed_err", kv.second.meanSigned());
    }
    if (mismatches) {
        std::fprintf(stderr,
                     "geomancy_explain: %d ledger/metrics mismatches\n",
                     mismatches);
        return 2;
    }
    std::printf("metrics snapshot consistent with ledger (%zu devices)\n",
                byDevice.size());
    return 0;
}

int
runPredictionError(const Ledger &ledger, bool perMount, bool json,
                   const std::string &metricsPath)
{
    ErrorStat overall;
    std::map<uint64_t, ErrorStat> byDevice;
    collectErrors(ledger, overall, byDevice);

    if (json) {
        std::ostringstream os;
        os << "{\"samples\":" << overall.samples << ",\"mae\":"
           << overall.meanAbs() << ",\"signed\":" << overall.meanSigned();
        if (perMount) {
            os << ",\"per_mount\":[";
            bool first = true;
            for (const auto &kv : byDevice) {
                os << (first ? "" : ",") << "{\"device\":" << kv.first
                   << ",\"samples\":" << kv.second.samples
                   << ",\"mae\":" << kv.second.meanAbs()
                   << ",\"signed\":" << kv.second.meanSigned() << "}";
                first = false;
            }
            os << "]";
        }
        os << "}";
        std::printf("%s\n", os.str().c_str());
    } else {
        geo::TextTable table("prediction error (predicted vs realized "
                             "throughput)");
        table.setHeader({"mount", "samples", "mean |err|", "mean signed"});
        if (perMount)
            for (const auto &kv : byDevice)
                table.addRow({"dev" + std::to_string(kv.first),
                              std::to_string(kv.second.samples),
                              fmt(kv.second.meanAbs()),
                              fmt(kv.second.meanSigned())});
        table.addRow({"overall", std::to_string(overall.samples),
                      fmt(overall.meanAbs()), fmt(overall.meanSigned())});
        table.print(std::cout);
    }

    if (!metricsPath.empty())
        return checkMetrics(metricsPath, byDevice);
    return 0;
}

/* ------------------------------------------------------------------ */
/* --vetoes                                                            */
/* ------------------------------------------------------------------ */

int
runVetoes(const Ledger &ledger, bool json)
{
    std::map<std::string, uint64_t> counts;
    uint64_t total = 0;
    for (const auto &row : ledger.rows) {
        if (row.str("t") != "candidate")
            continue;
        counts[row.str("verdict")] += 1;
        ++total;
    }
    if (json) {
        std::ostringstream os;
        os << "{\"candidates\":" << total << ",\"verdicts\":{";
        bool first = true;
        for (const auto &kv : counts) {
            os << (first ? "" : ",") << "\"" << jsonEscape(kv.first)
               << "\":" << kv.second;
            first = false;
        }
        os << "}}";
        std::printf("%s\n", os.str().c_str());
        return 0;
    }
    geo::TextTable table("ActionChecker verdicts");
    table.setHeader({"verdict", "count", "share"});
    for (const auto &kv : counts)
        table.addRow({kv.first, std::to_string(kv.second),
                      total ? fmt(100.0 * kv.second / total, 1) + "%"
                            : "0%"});
    table.print(std::cout);
    std::printf("%llu candidate decisions total\n",
                static_cast<unsigned long long>(total));
    return 0;
}

/* ------------------------------------------------------------------ */
/* --safe-mode-timeline                                                */
/* ------------------------------------------------------------------ */

int
runSafeModeTimeline(const Ledger &ledger, bool json)
{
    struct Transition
    {
        uint64_t cycle;
        std::string event;
    };
    std::vector<Transition> transitions;
    uint64_t safeCycles = 0;
    uint64_t totalCycles = 0;
    for (const auto &row : ledger.rows) {
        std::string t = row.str("t");
        if (t == "transition")
            transitions.push_back({static_cast<uint64_t>(row.num("cycle")),
                                   row.str("event")});
        else if (t == "cycle_start") {
            ++totalCycles;
            if (row.flag("safe_mode"))
                ++safeCycles;
        }
    }
    if (json) {
        std::ostringstream os;
        os << "{\"cycles\":" << totalCycles << ",\"safe_cycles\":"
           << safeCycles << ",\"transitions\":[";
        for (size_t i = 0; i < transitions.size(); ++i)
            os << (i ? "," : "") << "{\"cycle\":" << transitions[i].cycle
               << ",\"event\":\"" << jsonEscape(transitions[i].event)
               << "\"}";
        os << "]}";
        std::printf("%s\n", os.str().c_str());
        return 0;
    }
    geo::TextTable table("safe-mode timeline");
    table.setHeader({"cycle", "event"});
    for (const auto &t : transitions)
        table.addRow({std::to_string(t.cycle), t.event});
    table.print(std::cout);
    std::printf("%llu of %llu cycles started in safe mode\n",
                static_cast<unsigned long long>(safeCycles),
                static_cast<unsigned long long>(totalCycles));
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: geomancy_explain --ledger FILE [--json] [--metrics FILE]\n"
        "           (--why FILE@CYCLE | --prediction-error [--per-mount] |\n"
        "            --vetoes | --safe-mode-timeline)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string ledgerPath;
    std::string metricsPath;
    std::string whySpec;
    bool json = false;
    bool perMount = false;
    enum Mode { None, Why, PredictionError, Vetoes, SafeModeTimeline };
    Mode mode = None;

    auto next = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "geomancy_explain: %s needs a value\n",
                         flag);
            std::exit(1);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--ledger")
            ledgerPath = next(i, "--ledger");
        else if (arg == "--metrics")
            metricsPath = next(i, "--metrics");
        else if (arg == "--json")
            json = true;
        else if (arg == "--per-mount")
            perMount = true;
        else if (arg == "--why") {
            mode = Why;
            whySpec = next(i, "--why");
        } else if (arg == "--prediction-error")
            mode = PredictionError;
        else if (arg == "--vetoes")
            mode = Vetoes;
        else if (arg == "--safe-mode-timeline")
            mode = SafeModeTimeline;
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "geomancy_explain: unknown option %s\n",
                         arg.c_str());
            usage();
            return 1;
        }
    }
    if (ledgerPath.empty() || mode == None) {
        usage();
        return 1;
    }

    Ledger ledger;
    std::string error;
    if (!loadLedger(ledgerPath, ledger, error)) {
        std::fprintf(stderr, "geomancy_explain: %s\n", error.c_str());
        return 1;
    }

    switch (mode) {
    case Why: {
        size_t at = whySpec.find('@');
        if (at == std::string::npos) {
            std::fprintf(stderr,
                         "geomancy_explain: --why wants FILE@CYCLE\n");
            return 1;
        }
        uint64_t file = std::strtoull(whySpec.c_str(), nullptr, 10);
        uint64_t cycle =
            std::strtoull(whySpec.c_str() + at + 1, nullptr, 10);
        return runWhy(ledger, file, cycle, json);
    }
    case PredictionError:
        return runPredictionError(ledger, perMount, json, metricsPath);
    case Vetoes:
        return runVetoes(ledger, json);
    case SafeModeTimeline:
        return runSafeModeTimeline(ledger, json);
    case None:
        break;
    }
    usage();
    return 1;
}
