#!/usr/bin/env bash
# Perf-baseline smoke test: run the micro_benchmarks perf suite in
# reduced (quick) mode and validate the BENCH_perf.json it emits
# against the geo-perf-2 schema.  Catches a broken perf harness (or a
# benchmark that stopped emitting a section) without paying for the
# full measurement run.  Also runs geomancy_sim with --metrics-json
# and validates the geo-metrics-1 snapshot schema end to end.
#
# Usage: tools/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
bench="${build_dir}/bench/micro_benchmarks"

if [[ ! -x "${bench}" ]]; then
    echo "bench_smoke.sh: ${bench} not built (cmake --build ${build_dir})" >&2
    exit 1
fi

out="$(mktemp /tmp/BENCH_perf.XXXXXX.json)"
trap 'rm -f "${out}"' EXIT

echo "== running perf suite (quick mode) =="
GEO_PERF_QUICK=1 GEO_SKIP_MICRO=1 GEO_PERF_OUT="${out}" "${bench}"

echo "== validating ${out} =="
python3 - "${out}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)

def fail(message):
    print(f"bench_smoke: {message}", file=sys.stderr)
    sys.exit(1)

if doc.get("schema") != "geo-perf-2":
    fail(f"unexpected schema {doc.get('schema')!r}")
if not isinstance(doc.get("threads"), int) or doc["threads"] < 1:
    fail("threads must be a positive integer")
if not isinstance(doc.get("hw_concurrency"), int) or \
        doc["hw_concurrency"] < 1:
    fail("hw_concurrency must be a positive integer (perf_diff uses it "
         "to skip scaling deltas on single-core machines)")

gemm = doc.get("gemm")
if not isinstance(gemm, list) or not gemm:
    fail("gemm section missing or empty")
for entry in gemm:
    for key in ("m", "k", "n", "naive_ms", "fast_ms", "speedup"):
        if key not in entry:
            fail(f"gemm entry missing {key}: {entry}")
    if entry["naive_ms"] <= 0 or entry["fast_ms"] <= 0:
        fail(f"gemm timings must be positive: {entry}")

train = doc.get("train")
if not isinstance(train, dict):
    fail("train section missing")
for key in ("epoch_ms", "retrain_ms", "retrain_epochs",
            "steady_state_allocs"):
    if key not in train:
        fail(f"train missing {key}")
if train["epoch_ms"] <= 0 or train["retrain_ms"] <= 0:
    fail(f"train timings must be positive: {train}")
if train["steady_state_allocs"] != 0:
    fail("steady-state training epochs allocated "
         f"{train['steady_state_allocs']} Matrix buffers (want 0: the "
         "scratch arena must absorb epochs after the first)")

scoring = doc.get("candidate_scoring")
if not isinstance(scoring, dict):
    fail("candidate_scoring section missing")
for key in ("files", "devices", "trained", "scalar_ms", "batched_ms",
            "speedup", "bitwise_equal"):
    if key not in scoring:
        fail(f"candidate_scoring missing {key}")
if not scoring["trained"]:
    fail("candidate_scoring model failed to train")
if not scoring["bitwise_equal"]:
    fail("batched scoring diverged from the scalar path")

cycle = doc.get("full_cycle")
if not isinstance(cycle, dict):
    fail("full_cycle section missing")
for key in ("cycle_ms", "predict_ms"):
    if key not in cycle:
        fail(f"full_cycle missing {key}")

scaling = doc.get("model_search_scaling")
if not isinstance(scaling, list) or not scaling:
    fail("model_search_scaling section missing or empty")
for entry in scaling:
    for key in ("workers", "seconds", "speedup"):
        if key not in entry:
            fail(f"model_search_scaling entry missing {key}: {entry}")

overhead = doc.get("metrics_overhead")
if not isinstance(overhead, dict):
    fail("metrics_overhead section missing")
for key in ("counter_ns", "histogram_ns", "plain_loop_ns"):
    if key not in overhead:
        fail(f"metrics_overhead missing {key}")
    if overhead[key] < 0:
        fail(f"metrics_overhead {key} must be non-negative")

ledger = doc.get("ledger_overhead")
if not isinstance(ledger, dict):
    fail("ledger_overhead section missing")
for key in ("with_ms", "without_ms", "overhead_frac", "rows"):
    if key not in ledger:
        fail(f"ledger_overhead missing {key}")
if ledger["rows"] <= 0:
    fail("ledger_overhead recorded no ledger rows")
if ledger["with_ms"] <= 0 or ledger["without_ms"] <= 0:
    fail(f"ledger_overhead timings must be positive: {ledger}")
# Budget: the audit ledger must stay under 2% of the decision cycle.
# The true cost is well under a millisecond per cycle, which is below
# the run-to-run noise of a single quick measurement on a shared
# machine, so only an overhead that is both relatively AND absolutely
# large is treated as a real regression.
delta_ms = ledger["with_ms"] - ledger["without_ms"]
if ledger["overhead_frac"] >= 0.02 and delta_ms >= 2.0:
    fail(f"ledger overhead {ledger['overhead_frac']:.1%} "
         f"({delta_ms:.2f} ms/cycle) blows the 2% budget")

print("bench_smoke: BENCH_perf.json schema OK "
      f"({len(gemm)} gemm sizes, epoch {train['epoch_ms']:.1f} ms / "
      f"0 steady-state allocs, scoring speedup "
      f"{scoring['speedup']:.2f}x, bitwise_equal="
      f"{scoring['bitwise_equal']}, counter overhead "
      f"{overhead['counter_ns']:.1f} ns, ledger overhead "
      f"{ledger['overhead_frac']:.1%})")
EOF

echo "== diffing against the committed quick baseline =="
# Quick-mode timings are only comparable with a quick-mode baseline;
# BENCH_perf.json (the tracked full-mode baseline) is diffed by the
# full perf runs, not the smoke test.  A single quick run on a shared
# machine can be contaminated by co-tenant load, so one failed diff
# earns one remeasurement before the smoke test fails.
baseline="${repo_root}/BENCH_perf_quick.json"
if [[ -f "${baseline}" ]]; then
    if ! python3 "${repo_root}/tools/perf_diff.py" "${baseline}" "${out}"
    then
        echo "== perf_diff failed; remeasuring once to rule out noise =="
        GEO_PERF_QUICK=1 GEO_SKIP_MICRO=1 GEO_PERF_OUT="${out}" "${bench}"
        python3 "${repo_root}/tools/perf_diff.py" "${baseline}" "${out}"
    fi
else
    echo "bench_smoke.sh: ${baseline} missing, skipping perf diff" >&2
fi

sim="${build_dir}/tools/geomancy_sim"
if [[ -x "${sim}" ]]; then
    metrics="$(mktemp /tmp/geo_metrics.XXXXXX.json)"
    trap 'rm -f "${out}" "${metrics}"' EXIT

    echo "== running geomancy_sim --metrics-json =="
    "${sim}" --policy geomancy --runs 3 --warmup 1 --epochs 4 --quiet \
        --metrics-json "${metrics}"

    echo "== validating ${metrics} =="
    python3 - "${metrics}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)

def fail(message):
    print(f"bench_smoke: {message}", file=sys.stderr)
    sys.exit(1)

if doc.get("schema") != "geo-metrics-1":
    fail(f"unexpected metrics schema {doc.get('schema')!r}")
for section in ("counters", "gauges", "histograms"):
    if not isinstance(doc.get(section), dict):
        fail(f"metrics snapshot missing {section} object")

counters = doc["counters"]
for name in ("geomancy.cycles", "monitor.records_observed"):
    if counters.get(name, 0) <= 0:
        fail(f"counter {name} should be positive after a run")
for name, hist in doc["histograms"].items():
    for key in ("count", "sum", "min", "max", "p50", "p95", "p99"):
        if key not in hist:
            fail(f"histogram {name} missing {key}")

print(f"bench_smoke: metrics snapshot OK ({len(counters)} counters, "
      f"{len(doc['histograms'])} histograms)")
EOF
else
    echo "bench_smoke.sh: ${sim} not built, skipping metrics check" >&2
fi

if [[ -x "${sim}" ]]; then
    ckpt_dir="$(mktemp -d /tmp/geo_ckpt_smoke.XXXXXX)"
    trap 'rm -f "${out}"; rm -rf "${ckpt_dir}"' EXIT

    echo "== running geomancy_sim --checkpoint-dir =="
    "${sim}" --policy geomancy --runs 6 --warmup 1 --cadence 3 \
        --epochs 4 --quiet --checkpoint-dir "${ckpt_dir}"

    echo "== validating checkpoint files in ${ckpt_dir} =="
    # The on-disk format is deliberately tool-friendly: a one-line
    # header (magic, cycle, payload length, zlib CRC32) followed by the
    # payload. Validate every snapshot with nothing but python's zlib.
    python3 - "${ckpt_dir}" <<'EOF'
import glob
import sys
import zlib

def fail(message):
    print(f"bench_smoke: {message}", file=sys.stderr)
    sys.exit(1)

snapshots = sorted(glob.glob(sys.argv[1] + "/ckpt-*.geo"))
if not snapshots:
    fail("no checkpoint files were written")

for path in snapshots:
    with open(path, "rb") as fh:
        blob = fh.read()
    newline = blob.find(b"\n")
    if newline < 0:
        fail(f"{path}: no header line")
    fields = blob[:newline].decode("ascii", "replace").split()
    if len(fields) != 4 or fields[0] != "geo-ckpt-1":
        fail(f"{path}: bad header {fields!r}")
    header = {}
    for field in fields[1:]:
        key, _, value = field.partition("=")
        header[key] = value
    for key in ("cycle", "bytes", "crc32"):
        if key not in header:
            fail(f"{path}: header missing {key}")
    payload = blob[newline + 1:]
    if len(payload) != int(header["bytes"]):
        fail(f"{path}: payload is {len(payload)} bytes, header says "
             f"{header['bytes']}")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    if crc != int(header["crc32"], 16):
        fail(f"{path}: CRC mismatch (file {header['crc32']}, "
             f"computed {crc:08x})")
    if b"geo.cycles" not in payload:
        fail(f"{path}: payload lacks the pipeline cycle counter")

print(f"bench_smoke: {len(snapshots)} checkpoint file(s) OK "
      "(header, length and zlib CRC32 all match)")
EOF
fi

soak="${build_dir}/bench/fig9_chaos_soak"
if [[ -x "${soak}" ]]; then
    soak_dir="$(mktemp -d /tmp/geo_fig9_smoke.XXXXXX)"
    trap 'rm -f "${out}"; rm -rf "${soak_dir}"' EXIT

    echo "== running fig9 chaos soak (quick, 50 cycles) =="
    # The harness exits nonzero on any invariant violation, digest
    # divergence, or if the storm fails to trip safe mode; the metrics
    # snapshot is additionally schema-validated below.
    (cd "${soak_dir}" && \
        GEO_FIG9_CYCLES=50 GEO_METRICS_OUT="${soak_dir}/fig9.json" \
        "${soak}")

    echo "== validating ${soak_dir}/fig9.json =="
    python3 - "${soak_dir}/fig9.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)

def fail(message):
    print(f"bench_smoke: {message}", file=sys.stderr)
    sys.exit(1)

if doc.get("schema") != "geo-metrics-1":
    fail(f"unexpected metrics schema {doc.get('schema')!r}")
gauges = doc.get("gauges")
if not isinstance(gauges, dict):
    fail("metrics snapshot missing gauges object")

if gauges.get("fig9.cycles", 0) < 50:
    fail(f"soak ran {gauges.get('fig9.cycles')} cycles, wanted >= 50")
for scenario in ("reference", "same-seed-twin", "crash-after-train",
                 "crash-in-safe-mode"):
    if gauges.get(f"fig9.{scenario}.identical", 0) != 1:
        fail(f"scenario {scenario} diverged from the reference digests")
if gauges.get("fig9.reference.safe_entries", 0) < 1:
    fail("the telemetry storm never tripped safe mode")
if gauges.get("fig9.reference.quarantined", 0) <= 0:
    fail("the chaos schedule quarantined no telemetry")

print("bench_smoke: fig9 chaos soak OK "
      f"({gauges['fig9.cycles']:.0f} cycles, "
      f"{gauges['fig9.reference.safe_entries']:.0f} safe-mode entries, "
      f"{gauges['fig9.reference.quarantined']:.0f} records quarantined, "
      "all digests identical)")
EOF
else
    echo "bench_smoke.sh: ${soak} not built, skipping chaos gate" >&2
fi

scale="${build_dir}/bench/fig10_scale_out"
if [[ -x "${scale}" ]]; then
    scale_dir="$(mktemp -d /tmp/geo_fig10_smoke.XXXXXX)"
    trap 'rm -f "${out}"; rm -rf "${scale_dir}"' EXIT

    echo "== running fig10 scale-out (quick, 3 rounds) =="
    # The harness exits nonzero unless the 4-shard fleet reaches >= 2x
    # the monolith's aggregate optimizer throughput with the per-device
    # budgets intact and a byte-identical same-seed twin; the gauges it
    # emits are additionally schema-validated below.
    (cd "${scale_dir}" && \
        GEO_FIG10_ROUNDS=3 GEO_FIG10_TENANTS=4 \
        GEO_METRICS_OUT="${scale_dir}/fig10.json" \
        "${scale}")

    echo "== validating ${scale_dir}/fig10.json =="
    python3 - "${scale_dir}/fig10.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)

def fail(message):
    print(f"bench_smoke: {message}", file=sys.stderr)
    sys.exit(1)

if doc.get("schema") != "geo-metrics-1":
    fail(f"unexpected metrics schema {doc.get('schema')!r}")
gauges = doc.get("gauges")
if not isinstance(gauges, dict):
    fail("metrics snapshot missing gauges object")

if gauges.get("fig10.scenarios", 0) < 3:
    fail(f"expected >= 3 shard-count scenarios, "
         f"got {gauges.get('fig10.scenarios')}")
for shards in (1, 2, 4):
    prefix = f"fig10.shards{shards}."
    for key in ("cycles_per_sec", "mean_cycle_ms", "applied", "denied",
                "peak_device_moves"):
        if prefix + key not in gauges:
            fail(f"gauge {prefix}{key} missing")
    if gauges[prefix + "cycles_per_sec"] <= 0:
        fail(f"{prefix}cycles_per_sec must be positive")
if gauges.get("fig10.speedup_4v1", 0) < 2.0:
    fail(f"4-shard speedup {gauges.get('fig10.speedup_4v1')} below the "
         "2x gate")
if gauges.get("fig10.twin_identical", 0) != 1:
    fail("same-seed 4-shard twin diverged")
if gauges.get("fig10.budget_ok", 0) != 1:
    fail("a per-device admission budget was exceeded")

print("bench_smoke: fig10 scale-out OK "
      f"(speedup {gauges['fig10.speedup_4v1']:.2f}x at 4 shards, "
      "budgets held, twin identical)")
EOF
else
    echo "bench_smoke.sh: ${scale} not built, skipping scale-out gate" >&2
fi

echo "== bench_smoke.sh: OK =="
