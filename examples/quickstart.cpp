/**
 * @file
 * Quickstart: attach Geomancy to a simulated storage system and watch
 * it improve the workload's throughput.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/geomancy.hh"
#include "storage/bluesky.hh"
#include "util/logging.hh"
#include "workload/belle2.hh"

int
main()
{
    using namespace geo;

    // 1. A target system: the six-mount Bluesky testbed of the paper.
    auto system = storage::makeBlueskySystem();

    // 2. A workload: the BELLE II Monte-Carlo suite (24 ROOT files,
    //    read-heavy, looping).
    workload::Belle2Workload workload(*system);

    // 3. Geomancy, attached to the system and managing the workload's
    //    files. Monitoring agents start observing immediately.
    core::GeomancyConfig config;
    config.drl.epochs = 12; // fast demo settings
    core::Geomancy geomancy(*system, workload.files(), config);

    // 4. Warm up: run the workload so the ReplayDB fills with
    //    performance history.
    std::cout << "warming up (collecting access history)...\n";
    double warmup_tp = 0.0;
    size_t warmup_n = 0;
    for (int run = 0; run < 4; ++run) {
        for (const auto &obs : workload.executeRun()) {
            warmup_tp += obs.throughput;
            ++warmup_n;
        }
    }
    warmup_tp /= static_cast<double>(warmup_n);
    std::cout << "  baseline throughput: " << warmup_tp / 1e9
              << " GB/s over " << warmup_n << " accesses\n";

    // 5. Let Geomancy optimize: every 5 runs (the paper's cadence) it
    //    retrains its network and migrates files it predicts will be
    //    faster elsewhere.
    double tuned_tp = 0.0;
    size_t tuned_n = 0;
    for (int run = 0; run < 20; ++run) {
        for (const auto &obs : workload.executeRun()) {
            if (run >= 10) { // measure the second half, post-learning
                tuned_tp += obs.throughput;
                ++tuned_n;
            }
        }
        if ((run + 1) % 5 == 0) {
            core::CycleReport report = geomancy.runCycle();
            std::cout << "  cycle " << geomancy.cyclesRun() << ": "
                      << (report.skipped
                              ? "skipped (warming up)"
                              : report.explored
                                    ? "explored randomly"
                                    : strprintf("moved %zu file(s)",
                                                report.moves.applied))
                      << "\n";
        }
    }
    tuned_tp /= static_cast<double>(tuned_n);

    std::cout << "\nresults:\n";
    std::cout << "  before Geomancy: " << warmup_tp / 1e9 << " GB/s\n";
    std::cout << "  after Geomancy:  " << tuned_tp / 1e9 << " GB/s  ("
              << (tuned_tp / warmup_tp - 1.0) * 100.0 << "% change)\n";
    std::cout << "  files moved in total: "
              << system->migrationCount() << "\n";
    return 0;
}
