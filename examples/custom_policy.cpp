/**
 * @file
 * Writing a custom placement policy against the public API.
 *
 * Implements a size-tiered policy — small (hot, cheap-to-move) files
 * on the fastest mounts, large files on big slow mounts — and races it
 * against the library's LRU baseline on identical systems.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/custom_policy
 */

#include <algorithm>
#include <iostream>

#include "core/experiment.hh"
#include "storage/bluesky.hh"
#include "util/table.hh"
#include "workload/belle2.hh"

namespace {

using namespace geo;

/**
 * Smallest files to the fastest devices; re-evaluated dynamically as
 * the measured device ranking shifts.
 */
class SizeTieredPolicy : public core::PlacementPolicy
{
  public:
    std::string name() const override { return "size-tiered"; }

    size_t
    rebalance(core::PolicyContext &context) override
    {
        std::vector<storage::FileId> files = context.files;
        std::sort(files.begin(), files.end(),
                  [&](storage::FileId a, storage::FileId b) {
                      return context.system.file(a).sizeBytes <
                             context.system.file(b).sizeBytes;
                  });
        const auto &devices = context.devicesFastestFirst;
        size_t group = std::max<size_t>(1, files.size() / devices.size());
        size_t moved = 0;
        for (size_t i = 0; i < files.size(); ++i) {
            storage::DeviceId target =
                devices[std::min(i / group, devices.size() - 1)];
            if (context.system.location(files[i]) != target &&
                context.system.moveFile(files[i], target).moved) {
                ++moved;
            }
        }
        return moved;
    }
};

core::ExperimentResult
race(core::PlacementPolicy &policy)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    core::ExperimentConfig config;
    config.warmupRuns = 2;
    config.measuredRuns = 15;
    config.cadence = 5;
    core::ExperimentRunner runner(*system, workload, policy, config);
    return runner.run();
}

} // namespace

int
main()
{
    SizeTieredPolicy custom;
    core::LruPolicy lru;

    std::cout << "racing size-tiered (custom) vs LRU (library)...\n\n";
    core::ExperimentResult custom_result = race(custom);
    core::ExperimentResult lru_result = race(lru);

    TextTable table("Custom policy vs library baseline");
    table.setHeader({"Policy", "Avg throughput (GB/s)", "files moved"});
    for (const auto *result : {&custom_result, &lru_result}) {
        table.addRow({result->policyName,
                      TextTable::num(result->averageThroughput / 1e9, 2),
                      std::to_string(result->filesMoved)});
    }
    table.print(std::cout);

    std::cout << "\nTo plug a policy into the full experiment harness, "
                 "implement core::PlacementPolicy::rebalance() and pass "
                 "it to core::ExperimentRunner - see "
                 "src/core/policies.hh.\n";
    return 0;
}
