/**
 * @file
 * Offline trace analysis, the paper's Section V-D/V-E pipeline:
 * generate (or load) an EOS-style access trace, screen features by
 * correlation with throughput, train a throughput model on the chosen
 * features, and checkpoint the trained weights.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/trace_analysis [trace.csv]
 *
 * With a CSV argument, the trace is read from disk (the format of
 * trace::recordsToCsv); without one, a synthetic trace is generated.
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "nn/model_zoo.hh"
#include "nn/serialize.hh"
#include "trace/eos_trace_gen.hh"
#include "trace/feature_matrix.hh"
#include "trace/feature_select.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace geo;

    // 1. Obtain a trace.
    std::vector<trace::AccessRecord> records;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        records = trace::recordsFromCsv(buffer.str());
        std::cout << "loaded " << records.size() << " records from "
                  << argv[1] << "\n";
    } else {
        trace::EosTraceGenerator generator({});
        records = generator.generate(20000);
        std::cout << "generated " << records.size()
                  << " synthetic EOS records\n";
    }
    if (records.size() < 1000) {
        std::cerr << "need at least 1000 records\n";
        return 1;
    }

    // 2. Feature screening (Fig. 4).
    TextTable table("Feature correlation with throughput");
    table.setHeader({"feature", "pearson r", "chosen"});
    for (const trace::FeatureCorrelation &fc :
         trace::correlateFeatures(records)) {
        table.addRow({fc.name, TextTable::num(fc.correlation, 3),
                      fc.chosen ? "YES" : ""});
    }
    table.print(std::cout);

    // 3. Train model 1 on the paper's six features.
    trace::PrepareOptions options;
    options.smoothingWindow = 8;
    trace::PreparedData prepared = trace::prepareDataset(
        records, trace::paperSelectedFeatures(), options);
    nn::DataSplit split = nn::chronologicalSplit(prepared.dataset);

    Rng rng(42);
    nn::Sequential model = nn::buildModel(1, 6, rng);
    nn::SgdOptimizer optimizer(0.05, 5.0);
    nn::TrainOptions train_options;
    train_options.epochs = 40;
    std::cout << "\ntraining model 1 (" << model.describe() << ")...\n";
    nn::TrainResult result =
        model.train(split.train, split.validation, optimizer,
                    train_options);
    std::cout << "  " << result.trainLoss.size() << " epochs in "
              << TextTable::num(result.seconds, 2) << " s\n";

    // 4. Evaluate on the held-out test set.
    nn::Matrix predictions = model.predict(split.test.inputs);
    std::vector<double> pred, target;
    for (size_t r = 0; r < split.test.size(); ++r) {
        pred.push_back(
            prepared.denormalizeTarget(predictions.at(r, 0)));
        target.push_back(
            prepared.denormalizeTarget(split.test.targets.at(r, 0)));
    }
    std::cout << "  test mean abs relative error: "
              << TextTable::num(meanAbsoluteRelativeError(pred, target),
                                2)
              << "%\n";

    // 5. Checkpoint the weights.
    const std::string path = "trace_model.weights";
    if (nn::saveWeightsFile(model, path))
        std::cout << "  weights saved to " << path << "\n";
    return 0;
}
