/**
 * @file
 * The paper's future-work extension in action: gap-aware movement
 * scheduling. Geomancy predicts per-file idle gaps from the ReplayDB,
 * and the movement scheduler only admits migrations that (a) fit in
 * the predicted gap and (b) respect a per-file cooldown.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/gap_scheduling
 */

#include <iostream>

#include "core/gap_predictor.hh"
#include "core/geomancy.hh"
#include "storage/bluesky.hh"
#include "util/table.hh"
#include "workload/belle2.hh"

int
main()
{
    using namespace geo;

    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);

    core::GeomancyConfig config;
    config.drl.epochs = 10;
    config.useScheduler = true;
    config.scheduler.fileCooldownSeconds = 30.0;
    config.scheduler.gapSafetyFactor = 1.5;
    core::Geomancy geomancy(*system, workload.files(), config);

    std::cout << "running workload with gap-aware scheduling...\n";
    for (int run = 0; run < 20; ++run) {
        workload.executeRun();
        if ((run + 1) % 5 == 0)
            geomancy.runCycle();
    }

    // Inspect the gap predictions Geomancy derived for a few files.
    core::GapPredictor predictor(geomancy.replayDb());
    TextTable table("Predicted access gaps (first 6 files)");
    table.setHeader({"file", "expected gap (s)", "shortest recent (s)",
                     "gaps seen"});
    for (size_t i = 0; i < 6 && i < workload.files().size(); ++i) {
        storage::FileId file = workload.files()[i];
        auto prediction = predictor.predict(file);
        if (prediction) {
            table.addRow({std::to_string(file),
                          TextTable::num(prediction->expectedGapSeconds, 3),
                          TextTable::num(prediction->shortestRecentGap, 3),
                          std::to_string(prediction->samples)});
        } else {
            table.addRow({std::to_string(file), "(insufficient history)",
                          "-", "-"});
        }
    }
    table.print(std::cout);

    core::MovementScheduler *scheduler = geomancy.scheduler();
    std::cout << "\nscheduler decisions:\n";
    std::cout << "  moves rejected by cooldown:  "
              << scheduler->rejectedByCooldown() << "\n";
    std::cout << "  moves rejected by gap check: "
              << scheduler->rejectedByGap() << "\n";
    std::cout << "  files moved:                 "
              << system->migrationCount() << "\n";
    std::cout << "\nA file that is mid-access when its migration would "
                 "start is never moved; lower gapSafetyFactor or "
                 "fileCooldownSeconds to trade churn for agility.\n";
    return 0;
}
