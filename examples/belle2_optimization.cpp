/**
 * @file
 * Full BELLE II optimization scenario: compare Geomancy against the
 * LFU heuristic (the paper's strongest baseline) on identical systems,
 * and print the throughput evolution with Geomancy's move markers —
 * a miniature of the paper's Fig. 5a.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/belle2_optimization
 */

#include <iostream>

#include "core/experiment.hh"
#include "storage/bluesky.hh"
#include "util/table.hh"
#include "workload/belle2.hh"

namespace {

geo::core::ExperimentConfig
demoConfig()
{
    geo::core::ExperimentConfig config;
    config.warmupRuns = 3;
    config.measuredRuns = 20;
    config.cadence = 5;
    return config;
}

} // namespace

int
main()
{
    using namespace geo;

    // --- Run 1: Geomancy dynamic -------------------------------------
    core::ExperimentResult geomancy_result;
    {
        auto system = storage::makeBlueskySystem();
        workload::Belle2Workload workload(*system);
        core::GeomancyConfig gconfig;
        gconfig.drl.epochs = 12;
        core::Geomancy geomancy(*system, workload.files(), gconfig);
        core::GeomancyDynamicPolicy policy(geomancy);
        core::ExperimentRunner runner(*system, workload, policy,
                                      demoConfig());
        std::cout << "running Geomancy dynamic...\n";
        geomancy_result = runner.run();
    }

    // --- Run 2: LFU on an identical fresh system ----------------------
    core::ExperimentResult lfu_result;
    {
        auto system = storage::makeBlueskySystem();
        workload::Belle2Workload workload(*system);
        core::LfuPolicy policy;
        core::ExperimentRunner runner(*system, workload, policy,
                                      demoConfig());
        std::cout << "running LFU baseline...\n";
        lfu_result = runner.run();
    }

    // --- Report -------------------------------------------------------
    TextTable table("BELLE II workload results");
    table.setHeader({"Policy", "Avg throughput (GB/s)", "files moved"});
    for (const auto *result : {&geomancy_result, &lfu_result}) {
        table.addRow({result->policyName,
                      TextTable::num(result->averageThroughput / 1e9, 2),
                      std::to_string(result->filesMoved)});
    }
    table.print(std::cout);

    std::cout << "\nGeomancy throughput series (mean GB/s per 500 "
                 "accesses; * = moves applied):\n";
    std::vector<double> buckets = geomancy_result.bucketedSeries(500);
    for (size_t i = 0; i < buckets.size(); ++i) {
        bool moved = false;
        for (const core::MoveEvent &event : geomancy_result.moveEvents)
            if (event.accessNumber / 500 == i)
                moved = true;
        std::cout << "  " << (moved ? "*" : " ") << " bucket " << i
                  << ": " << buckets[i] / 1e9 << "\n";
    }

    double gain = (geomancy_result.averageThroughput /
                       lfu_result.averageThroughput -
                   1.0) *
                  100.0;
    std::cout << "\nGeomancy vs LFU: " << TextTable::num(gain, 1)
              << "%\n";
    return 0;
}
