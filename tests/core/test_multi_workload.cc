/**
 * @file
 * Multi-workload management: one Geomancy instance managing the files
 * of two workloads at once (the paper's scale-out direction), and the
 * live latency-target loop end to end.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/geomancy.hh"
#include "storage/bluesky.hh"
#include "workload/belle2.hh"
#include "workload/interference.hh"

namespace geo {
namespace core {
namespace {

TEST(MultiWorkload, GeomancyManagesTwoWorkloads)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload first(*system);
    workload::Belle2Config second_config;
    second_config.namePrefix = "belle2/second";
    second_config.seed = 555;
    workload::Belle2Workload second(*system, second_config);

    std::vector<storage::FileId> managed = first.files();
    managed.insert(managed.end(), second.files().begin(),
                   second.files().end());
    GeomancyConfig config;
    config.drl.epochs = 8;
    config.minHistory = 400;
    Geomancy geomancy(*system, managed, config);
    EXPECT_EQ(geomancy.managedFiles().size(), 48u);

    // Interleave the two workloads and let Geomancy act.
    bool acted = false;
    for (int round = 0; round < 8; ++round) {
        first.executeRun();
        second.executeRun();
        CycleReport report = geomancy.runCycle();
        acted = acted || report.acted;
    }
    EXPECT_TRUE(acted) << "no moves across 8 cycles of two workloads";

    // Moves may touch files of either workload.
    auto moves = geomancy.replayDb().recentMovements(1000);
    EXPECT_FALSE(moves.empty());
    for (const MovementRecord &move : moves) {
        EXPECT_TRUE(std::find(managed.begin(), managed.end(),
                              move.file) != managed.end());
    }
}

TEST(MultiWorkload, LiveLatencyTargetLoop)
{
    // Full live loop with the latency model target: the engine flips
    // to lower-is-better and cycles still act sanely.
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    GeomancyConfig config;
    config.drl.epochs = 8;
    config.minHistory = 300;
    config.daemon.target = ModelTarget::Latency;
    Geomancy geomancy(*system, workload.files(), config);

    for (int run = 0; run < 4; ++run)
        workload.executeRun();
    CycleReport report = geomancy.runCycle();
    EXPECT_FALSE(report.skipped);
    EXPECT_TRUE(geomancy.engine().lowerIsBetter());

    // Subsequent cycles keep working (moves optional, no crashes).
    for (int cycle = 0; cycle < 3; ++cycle) {
        workload.executeRun();
        EXPECT_NO_FATAL_FAILURE(geomancy.runCycle());
    }
}

TEST(MultiWorkload, ManagedSubsetLeavesOthersAlone)
{
    // Geomancy manages only the first workload; the second workload's
    // files must never be moved by model-driven or exploration cycles.
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload tuned(*system);
    workload::InterferenceWorkload other(*system);
    GeomancyConfig config;
    config.drl.epochs = 8;
    config.minHistory = 300;
    config.explorationRate = 0.5;
    Geomancy geomancy(*system, tuned.files(), config);

    std::map<storage::FileId, storage::DeviceId> other_before;
    for (storage::FileId file : other.files())
        other_before[file] = system->location(file);

    for (int round = 0; round < 6; ++round) {
        tuned.executeRun();
        other.executeRun();
        geomancy.runCycle();
    }
    for (storage::FileId file : other.files())
        EXPECT_EQ(system->location(file), other_before[file])
            << "unmanaged file " << file << " was moved";
}

} // namespace
} // namespace core
} // namespace geo
