/**
 * @file
 * Edge cases of the DRL engine and its batch pipeline: constant
 * rewards, single-device systems, empty candidate lists, repeated
 * retrains over a sliding window.
 */

#include <gtest/gtest.h>

#include "core/drl_engine.hh"

namespace geo {
namespace core {
namespace {

PerfRecord
record(storage::FileId file, storage::DeviceId device, double throughput,
       int64_t at)
{
    PerfRecord rec;
    rec.file = file;
    rec.device = device;
    rec.rb = 1000000;
    rec.ots = at;
    rec.cts = at + 1;
    rec.throughput = throughput;
    return rec;
}

TrainingBatch
batchOf(const std::vector<PerfRecord> &records)
{
    ReplayDb db;
    DaemonConfig config;
    config.smoothingWindow = 1;
    InterfaceDaemon daemon(db, config);
    daemon.receiveBatch(records);
    std::vector<storage::DeviceId> devices;
    for (storage::DeviceId d = 0; d < 6; ++d)
        devices.push_back(d);
    return daemon.buildTrainingBatch(devices);
}

DrlConfig
fastConfig()
{
    DrlConfig config;
    config.epochs = 15;
    return config;
}

TEST(EngineEdgeCases, ConstantRewardHandledGracefully)
{
    // With a constant target, predicting that constant is *correct*;
    // divergence detection must not flag it (constant targets carry
    // no variation to miss) and predictions land on the constant.
    std::vector<PerfRecord> records;
    for (int i = 0; i < 200; ++i)
        records.push_back(record(i % 8, i % 3, 100.0, i));
    DrlEngine engine(fastConfig());
    RetrainStats stats = engine.retrain(batchOf(records));
    EXPECT_TRUE(stats.trained);
    EXPECT_FALSE(stats.diverged);
    ASSERT_TRUE(engine.ready());
    // The target normalizer collapses a constant column; predictions
    // denormalize back onto the constant.
    double predicted =
        engine.predictThroughput(records.back().features());
    EXPECT_NEAR(predicted, 100.0, 30.0);
}

TEST(EngineEdgeCases, SingleDeviceCandidateList)
{
    Rng rng(31);
    std::vector<PerfRecord> records;
    for (int i = 0; i < 300; ++i)
        records.push_back(
            record(i % 8, 0, 100.0 + rng.uniform(0.0, 50.0), i));
    DrlEngine engine(fastConfig());
    RetrainStats stats = engine.retrain(batchOf(records));
    ASSERT_TRUE(stats.trained);
    if (stats.diverged)
        GTEST_SKIP() << "model diverged on this seed";
    std::vector<CandidateScore> scores =
        engine.scoreCandidates(records.back(), {0});
    ASSERT_EQ(scores.size(), 1u);
    EXPECT_EQ(scores[0].device, 0u);
    EXPECT_GE(scores[0].predictedThroughput, 0.0);
}

TEST(EngineEdgeCases, EmptyCandidateList)
{
    Rng rng(32);
    std::vector<PerfRecord> records;
    for (int i = 0; i < 300; ++i)
        records.push_back(
            record(i % 8, i % 3, 100.0 + rng.uniform(0.0, 50.0), i));
    DrlEngine engine(fastConfig());
    RetrainStats stats = engine.retrain(batchOf(records));
    ASSERT_TRUE(stats.trained);
    if (stats.diverged)
        GTEST_SKIP() << "model diverged on this seed";
    EXPECT_TRUE(engine.scoreCandidates(records.back(), {}).empty());
}

TEST(EngineEdgeCases, SlidingWindowRetrains)
{
    // Repeated retrains over shifting windows must keep the optimizer
    // state consistent (Adam-style shape panics would fire here).
    Rng rng(33);
    DrlEngine engine(fastConfig());
    size_t trained = 0;
    for (int window = 0; window < 5; ++window) {
        std::vector<PerfRecord> records;
        for (int i = 0; i < 200; ++i) {
            int at = window * 200 + i;
            records.push_back(record(
                i % 8, static_cast<storage::DeviceId>(i % 3),
                100.0 + 20.0 * window + rng.uniform(0.0, 30.0), at));
        }
        RetrainStats stats = engine.retrain(batchOf(records));
        trained += stats.trained && !stats.diverged ? 1 : 0;
    }
    EXPECT_GE(trained, 3u);
}

TEST(EngineEdgeCases, RetrainStatsCarryErrorMetrics)
{
    Rng rng(34);
    std::vector<PerfRecord> records;
    for (int i = 0; i < 400; ++i)
        records.push_back(record(
            i % 8, static_cast<storage::DeviceId>(i % 3),
            100.0 + 50.0 * (i % 3) + rng.uniform(0.0, 10.0), i));
    DrlEngine engine(fastConfig());
    RetrainStats stats = engine.retrain(batchOf(records));
    ASSERT_TRUE(stats.trained);
    if (stats.diverged)
        GTEST_SKIP() << "model diverged on this seed";
    EXPECT_GT(stats.meanAbsRelError, 0.0);
    EXPECT_GT(stats.samples, 0u);
    EXPECT_GT(stats.seconds, 0.0);
}

} // namespace
} // namespace core
} // namespace geo
