/**
 * @file
 * Tests for the movement scheduler (cooldown + gap admission).
 */

#include <gtest/gtest.h>

#include "core/geomancy.hh"
#include "core/movement_scheduler.hh"
#include "storage/bluesky.hh"
#include "workload/belle2.hh"

namespace geo {
namespace core {
namespace {

CheckedMove
moveOf(storage::FileId file, storage::DeviceId from, storage::DeviceId to)
{
    CheckedMove move;
    move.file = file;
    move.from = from;
    move.to = to;
    move.predictedGain = 0.5;
    return move;
}

struct Fixture
{
    std::unique_ptr<storage::StorageSystem> system =
        storage::makeBlueskySystem();
    ReplayDb db;
    storage::FileId file;

    Fixture() { file = system->addFile("f", 1 << 20, 0); }
};

TEST(MovementScheduler, CooldownBlocksRapidRemoves)
{
    Fixture fx;
    SchedulerConfig config;
    config.fileCooldownSeconds = 100.0;
    config.checkGaps = false;
    MovementScheduler scheduler(*fx.system, fx.db, config);

    EXPECT_TRUE(scheduler.admit(moveOf(fx.file, 0, 1), 0.0));
    EXPECT_FALSE(scheduler.admit(moveOf(fx.file, 1, 2), 50.0));
    EXPECT_EQ(scheduler.rejectedByCooldown(), 1u);
    EXPECT_TRUE(scheduler.admit(moveOf(fx.file, 1, 2), 150.0));
}

TEST(MovementScheduler, CooldownIsPerFile)
{
    Fixture fx;
    storage::FileId other = fx.system->addFile("g", 1 << 20, 0);
    SchedulerConfig config;
    config.fileCooldownSeconds = 100.0;
    config.checkGaps = false;
    MovementScheduler scheduler(*fx.system, fx.db, config);
    EXPECT_TRUE(scheduler.admit(moveOf(fx.file, 0, 1), 0.0));
    EXPECT_TRUE(scheduler.admit(moveOf(other, 0, 1), 0.0));
}

TEST(MovementScheduler, GapCheckBlocksBusyFiles)
{
    Fixture fx;
    // File accessed back to back: gaps ~0.
    for (int i = 0; i < 20; ++i) {
        PerfRecord rec;
        rec.file = fx.file;
        rec.device = 0;
        rec.rb = 1000;
        rec.ots = i;
        rec.cts = i + 1; // closes exactly when the next opens
        rec.throughput = 1000.0;
        fx.db.insertAccess(rec);
    }
    SchedulerConfig config;
    config.fileCooldownSeconds = 0.0;
    config.checkGaps = true;
    MovementScheduler scheduler(*fx.system, fx.db, config);
    EXPECT_FALSE(scheduler.admit(moveOf(fx.file, 0, 1), 100.0));
    EXPECT_EQ(scheduler.rejectedByGap(), 1u);
}

TEST(MovementScheduler, IdleFilesPassGapCheck)
{
    Fixture fx;
    SchedulerConfig config;
    config.fileCooldownSeconds = 0.0;
    config.checkGaps = true;
    MovementScheduler scheduler(*fx.system, fx.db, config);
    // No history at all: moving cannot collide.
    EXPECT_TRUE(scheduler.admit(moveOf(fx.file, 0, 1), 0.0));
}

TEST(MovementScheduler, ExpectedTransferPositive)
{
    Fixture fx;
    MovementScheduler scheduler(*fx.system, fx.db, {});
    double seconds =
        scheduler.expectedTransferSeconds(moveOf(fx.file, 0, 1), 0.0);
    EXPECT_GT(seconds, 0.0);
    EXPECT_LT(seconds, 1.0); // 1 MB over GB/s-class devices
}

TEST(MovementScheduler, AdmitAllFilters)
{
    Fixture fx;
    storage::FileId other = fx.system->addFile("g", 1 << 20, 0);
    SchedulerConfig config;
    config.fileCooldownSeconds = 100.0;
    config.checkGaps = false;
    MovementScheduler scheduler(*fx.system, fx.db, config);
    scheduler.admit(moveOf(fx.file, 0, 1), 0.0); // start cooldown

    std::vector<CheckedMove> moves = {moveOf(fx.file, 1, 2),
                                      moveOf(other, 0, 1)};
    std::vector<CheckedMove> admitted =
        scheduler.admitAll(std::move(moves), 10.0);
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_EQ(admitted[0].file, other);
}

TEST(MovementScheduler, GeomancyIntegration)
{
    // Geomancy with the scheduler enabled still runs cycles cleanly.
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    GeomancyConfig config;
    config.drl.epochs = 8;
    config.minHistory = 200;
    config.useScheduler = true;
    config.scheduler.fileCooldownSeconds = 5.0;
    Geomancy geomancy(*system, workload.files(), config);
    for (int run = 0; run < 4; ++run)
        workload.executeRun();
    for (int cycle = 0; cycle < 3; ++cycle) {
        CycleReport report = geomancy.runCycle();
        EXPECT_FALSE(report.skipped);
        workload.executeRun();
    }
    ASSERT_NE(geomancy.scheduler(), nullptr);
}

TEST(MovementSchedulerDeathTest, BadConfig)
{
    Fixture fx;
    SchedulerConfig config;
    config.fileCooldownSeconds = -1.0;
    EXPECT_DEATH(MovementScheduler(*fx.system, fx.db, config),
                 "cooldown");
    SchedulerConfig bad_safety;
    bad_safety.gapSafetyFactor = 0.5;
    EXPECT_DEATH(MovementScheduler(*fx.system, fx.db, bad_safety),
                 "safety");
}

} // namespace
} // namespace core
} // namespace geo
