/**
 * @file
 * Crash-recovery hardening tests: restorePending() idempotency, the
 * ReplayDB's tolerance of corrupt on-disk files, watermark rewind
 * row-id reuse, and the DRL engine's divergence guard + rollback.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>

#include "core/control_agent.hh"
#include "core/drl_engine.hh"
#include "core/replay_db.hh"
#include "storage/bluesky.hh"
#include "storage/fault_injector.hh"
#include "util/metrics.hh"

namespace geo {
namespace core {
namespace {

storage::FaultEvent
outage(storage::DeviceId device, double start, double duration)
{
    storage::FaultEvent ev;
    ev.device = device;
    ev.kind = storage::FaultKind::Outage;
    ev.start = start;
    ev.duration = duration;
    return ev;
}

struct Fixture
{
    std::unique_ptr<storage::StorageSystem> system =
        storage::makeBlueskySystem();
    storage::FaultInjector injector{*system, {}};
    ReplayDb db;
    storage::FileId file;

    Fixture()
    {
        system->attachFaultInjector(&injector);
        file = system->addFile("f", 4 << 20, 0);
    }
};

ControlAgentConfig
fastRetry()
{
    ControlAgentConfig config;
    config.retry.maxAttempts = 3;
    config.retry.backoffBase = 10.0;
    config.retry.backoffMultiplier = 2.0;
    config.retry.jitterFraction = 0.0;
    config.retry.moveDeadlineSeconds = 1e6;
    return config;
}

TEST(CrashRecovery, RestorePendingIsIdempotent)
{
    Fixture fx;
    fx.injector.addEvent(outage(3, 0.0, 30.0));
    {
        ControlAgent agent(*fx.system, &fx.db, fastRetry());
        agent.apply({{fx.file, 3}});
        EXPECT_EQ(agent.pendingRetries(), 1u);
    } // crash: the in-memory queue dies with the agent

    ControlAgent revived(*fx.system, &fx.db, fastRetry());
    EXPECT_EQ(revived.restorePending(), 1u);
    // A second call (e.g. checkpoint restore followed by the safety
    // net) must not double-queue the same retry.
    EXPECT_EQ(revived.restorePending(), 0u);
    EXPECT_EQ(revived.pendingRetries(), 1u);
}

TEST(CrashRecovery, RestorePendingIgnoresCompletedMoves)
{
    Fixture fx;
    fx.injector.addEvent(outage(3, 0.0, 15.0));
    {
        ControlAgent agent(*fx.system, &fx.db, fastRetry());
        agent.apply({{fx.file, 3}});
        // The retry completes after the outage: last outcome Applied.
        fx.system->clock().advance(20.0);
        agent.apply({});
        EXPECT_EQ(fx.system->location(fx.file), 3u);
    }
    ControlAgent revived(*fx.system, &fx.db, fastRetry());
    EXPECT_EQ(revived.restorePending(), 0u);
    EXPECT_EQ(revived.pendingRetries(), 0u);
}

TEST(CrashRecovery, RestorePendingSkipsSupersededRetries)
{
    Fixture fx;
    fx.injector.addEvent(outage(3, 0.0, 0.0)); // permanent
    {
        ControlAgent agent(*fx.system, &fx.db, fastRetry());
        agent.apply({{fx.file, 3}});
        EXPECT_EQ(agent.pendingRetries(), 1u);
        // The model changed its mind; the old retry is superseded and
        // logged as such.
        MoveSummary summary = agent.apply({{fx.file, 1}});
        EXPECT_EQ(summary.applied, 1u);
        EXPECT_EQ(agent.pendingRetries(), 0u);
    }
    // A restarted agent must not resurrect the superseded retry and
    // drag the file back toward the dead device.
    ControlAgent revived(*fx.system, &fx.db, fastRetry());
    EXPECT_EQ(revived.restorePending(), 0u);
    EXPECT_EQ(fx.system->location(fx.file), 1u);
}

TEST(CrashRecovery, ReplayDbSurvivesBitFlippedFile)
{
    namespace fs = std::filesystem;
    std::string path =
        (fs::temp_directory_path() / "geo_test_replay_bitflip.db").string();
    fs::remove(path);
    {
        ReplayDb db(path);
        // Enough rows that the file spans several pages and a flip in
        // the middle lands in record data.
        std::vector<PerfRecord> records;
        for (int i = 0; i < 2000; ++i) {
            PerfRecord rec;
            rec.file = static_cast<storage::FileId>(i % 16);
            rec.device = static_cast<storage::DeviceId>(i % 4);
            rec.rb = 1000000 + static_cast<uint64_t>(i);
            rec.ots = i;
            rec.cts = i + 1;
            rec.throughput = 100.0 + i;
            records.push_back(rec);
        }
        db.insertAccesses(records);
        EXPECT_FALSE(db.openedCorrupt());
    }

    // Flip a run of bytes in the middle of the database file.
    {
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        ASSERT_TRUE(f.good());
        f.seekg(0, std::ios::end);
        auto size = static_cast<std::streamoff>(f.tellg());
        ASSERT_GT(size, 4096);
        f.seekp(size / 2);
        std::string garbage(64, '\xa5');
        f.write(garbage.data(),
                static_cast<std::streamsize>(garbage.size()));
    }

    auto &corrupt =
        util::MetricRegistry::global().counter("replaydb.open.corrupt");
    uint64_t before = corrupt.value();
    ReplayDb reopened(path);
    EXPECT_TRUE(reopened.openedCorrupt());
    EXPECT_GT(corrupt.value(), before);
    // The fallback is an empty in-memory store that still works.
    EXPECT_EQ(reopened.accessCount(), 0);
    PerfRecord rec;
    rec.file = 1;
    rec.device = 2;
    rec.throughput = 42.0;
    EXPECT_GT(reopened.insertAccess(rec), 0);
    fs::remove(path);
}

TEST(CrashRecovery, RewindReassignsIdenticalRowIds)
{
    ReplayDb db;
    PerfRecord rec;
    rec.file = 1;
    rec.device = 0;
    rec.throughput = 100.0;
    for (int i = 0; i < 3; ++i)
        db.insertAccess(rec);
    MovementRecord move;
    move.file = 1;
    move.toDevice = 2;
    db.insertMovement(move);
    ReplayDbWatermark wm = db.watermark();
    EXPECT_EQ(wm.accesses, 3);
    EXPECT_EQ(wm.movements, 1);

    // A crashed process appended past the cut...
    int64_t doomed = db.insertAccess(rec);
    EXPECT_EQ(doomed, 4);
    db.insertMovement(move);

    // ...and the rewind discards it so the resumed run's inserts land
    // on the exact ids the uninterrupted run would have used.
    db.rewindTo(wm);
    EXPECT_EQ(db.accessCount(), 3);
    EXPECT_EQ(db.movementCount(), 1);
    EXPECT_EQ(db.insertAccess(rec), 4);
    EXPECT_EQ(db.insertMovement(move), 2);
}

TEST(CrashRecovery, RewindToEmptyWatermarkClearsEverything)
{
    ReplayDb db;
    PerfRecord rec;
    rec.file = 1;
    rec.throughput = 1.0;
    db.insertAccess(rec);
    db.rewindTo({});
    EXPECT_EQ(db.accessCount(), 0);
    EXPECT_EQ(db.insertAccess(rec), 1); // sequence reset too
}

// ---------------------------------------------------------------------
// DRL divergence guard: a poisoned batch must not leave NaN weights
// in charge of placement decisions.

TrainingBatch
syntheticBatch()
{
    ReplayDb db;
    DaemonConfig config;
    config.smoothingWindow = 1;
    InterfaceDaemon daemon(db, config);
    Rng rng(404);
    std::vector<PerfRecord> records;
    for (size_t i = 0; i < 600; ++i) {
        PerfRecord rec;
        rec.file = i % 8;
        rec.device = static_cast<storage::DeviceId>(i % 3);
        rec.rb = 1000000 + (i % 50) * 1000;
        rec.ots = static_cast<int64_t>(i);
        rec.cts = static_cast<int64_t>(i) + 1;
        double base = 100.0 + 100.0 * static_cast<double>(rec.device);
        rec.throughput = base + rng.normal(0.0, 5.0);
        records.push_back(rec);
    }
    daemon.receiveBatch(records);
    return daemon.buildTrainingBatch({0, 1, 2});
}

TEST(CrashRecovery, DivergedRetrainRollsBackToLastGoodWeights)
{
    DrlConfig config;
    config.epochs = 60;
    config.learningRate = 0.1;
    DrlEngine engine(config);

    TrainingBatch good = syntheticBatch();
    RetrainStats first = engine.retrain(good);
    ASSERT_TRUE(first.trained);
    ASSERT_FALSE(first.diverged);
    ASSERT_TRUE(engine.ready());

    TrainingBatch poisoned = syntheticBatch();
    for (size_t r = 0; r < poisoned.dataset.targets.rows(); ++r)
        poisoned.dataset.targets(r, 0) =
            std::numeric_limits<double>::quiet_NaN();

    auto &registry = util::MetricRegistry::global();
    uint64_t diverged_before =
        registry.counter("drl.train.diverged").value();
    uint64_t rollbacks_before =
        registry.counter("drl.train.rollbacks").value();

    RetrainStats bad = engine.retrain(poisoned);
    EXPECT_TRUE(bad.diverged);
    EXPECT_FALSE(engine.ready()); // predictions disabled
    EXPECT_GT(registry.counter("drl.train.diverged").value(),
              diverged_before);
    EXPECT_GT(registry.counter("drl.train.rollbacks").value(),
              rollbacks_before);

    // The rollback restored finite weights: the next good retrain
    // starts from them and converges again.
    RetrainStats recovered = engine.retrain(good);
    EXPECT_TRUE(recovered.trained);
    EXPECT_FALSE(recovered.diverged);
    EXPECT_TRUE(engine.ready());
    PerfRecord probe;
    probe.file = 3;
    probe.device = 0;
    probe.rb = 1010000;
    probe.ots = 300;
    probe.cts = 301;
    for (const CandidateScore &score :
         engine.scoreCandidates(probe, {0, 1, 2}))
        EXPECT_TRUE(std::isfinite(score.predictedThroughput));
}

} // namespace
} // namespace core
} // namespace geo
