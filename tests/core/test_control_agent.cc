/**
 * @file
 * Tests for the control agent.
 */

#include <gtest/gtest.h>

#include "core/control_agent.hh"
#include "storage/bluesky.hh"

namespace geo {
namespace core {
namespace {

TEST(ControlAgent, AppliesValidMoves)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 1000, 0);
    ReplayDb db;
    ControlAgent agent(*system, &db);

    MoveSummary summary = agent.apply({{file, 3}});
    EXPECT_EQ(summary.requested, 1u);
    EXPECT_EQ(summary.applied, 1u);
    EXPECT_EQ(summary.bytesMoved, 1000u);
    EXPECT_GT(summary.transferSeconds, 0.0);
    EXPECT_EQ(system->location(file), 3u);
}

TEST(ControlAgent, LogsMovementsToReplayDb)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 1000, 0);
    ReplayDb db;
    ControlAgent agent(*system, &db);
    agent.apply({{file, 1}, {file, 2}});
    EXPECT_EQ(db.movementCount(), 2);
    auto moves = db.recentMovements(2);
    EXPECT_EQ(moves[0].toDevice, 1u);
    EXPECT_EQ(moves[1].fromDevice, 1u);
    EXPECT_EQ(moves[1].toDevice, 2u);
}

TEST(ControlAgent, SkipsNoOpAndInvalidMoves)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 1000, 0);
    ReplayDb db;
    ControlAgent agent(*system, &db);
    MoveSummary summary = agent.apply({
        {file, 0},   // already there
        {file, 99},  // no such device
    });
    EXPECT_EQ(summary.requested, 2u);
    EXPECT_EQ(summary.applied, 0u);
    EXPECT_EQ(db.movementCount(), 0);
}

TEST(ControlAgent, WorksWithoutDb)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 1000, 0);
    ControlAgent agent(*system, nullptr);
    MoveSummary summary = agent.apply({{file, 2}});
    EXPECT_EQ(summary.applied, 1u);
}

TEST(ControlAgent, LifetimeTotals)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId f1 = system->addFile("a", 100, 0);
    storage::FileId f2 = system->addFile("b", 200, 0);
    ControlAgent agent(*system, nullptr);
    agent.apply({{f1, 1}});
    agent.apply({{f2, 2}});
    EXPECT_EQ(agent.totalMoves(), 2u);
    EXPECT_EQ(agent.totalBytesMoved(), 300u);
}

} // namespace
} // namespace core
} // namespace geo
