/**
 * @file
 * Integration tests for the experiment runner.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "storage/bluesky.hh"

namespace geo {
namespace core {
namespace {

ExperimentConfig
shortConfig()
{
    ExperimentConfig config;
    config.warmupRuns = 1;
    config.measuredRuns = 6;
    config.cadence = 2;
    return config;
}

TEST(ExperimentRunner, CollectsSeries)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    NoOpPolicy policy;
    ExperimentRunner runner(*system, workload, policy, shortConfig());
    ExperimentResult result = runner.run();

    EXPECT_EQ(result.policyName, "no-op");
    EXPECT_EQ(result.totalAccesses, result.throughputSeries.size());
    EXPECT_GT(result.totalAccesses, 1000u);
    EXPECT_GT(result.averageThroughput, 0.0);
    EXPECT_EQ(result.filesMoved, 0u);
    EXPECT_TRUE(result.moveEvents.empty());

    uint64_t per_device_total = 0;
    for (uint64_t count : result.accessesPerDevice)
        per_device_total += count;
    EXPECT_EQ(per_device_total, result.totalAccesses);
}

TEST(ExperimentRunner, DynamicPolicyRebalancesOnCadence)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    RandomPolicy policy(/*dynamic=*/true);
    ExperimentRunner runner(*system, workload, policy, shortConfig());
    ExperimentResult result = runner.run();
    // Initial placement + rebalances at runs 2 and 4 (not at the end).
    EXPECT_GE(result.moveEvents.size(), 2u);
    EXPECT_GT(result.filesMoved, 0u);
    EXPECT_GT(result.bytesMoved, 0u);
}

TEST(ExperimentRunner, StaticPolicyMovesOnlyAtStart)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    SingleMountPolicy policy(system->deviceByName("file0"));
    ExperimentRunner runner(*system, workload, policy, shortConfig());
    ExperimentResult result = runner.run();
    ASSERT_EQ(result.moveEvents.size(), 1u);
    EXPECT_EQ(result.moveEvents[0].accessNumber, 0u);
    // All measured accesses served by file0.
    storage::DeviceId file0 = system->deviceByName("file0");
    EXPECT_EQ(result.accessesPerDevice[file0], result.totalAccesses);
}

TEST(ExperimentRunner, MoveEventsAlignedToSeries)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    RandomPolicy policy(true);
    ExperimentRunner runner(*system, workload, policy, shortConfig());
    ExperimentResult result = runner.run();
    for (const MoveEvent &event : result.moveEvents) {
        EXPECT_LE(event.accessNumber, result.totalAccesses);
        EXPECT_GT(event.filesMoved, 0u);
    }
}

TEST(ExperimentRunner, RunHookFiresEachMeasuredRun)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    NoOpPolicy policy;
    ExperimentRunner runner(*system, workload, policy, shortConfig());
    std::vector<size_t> seen;
    runner.setRunHook([&](size_t run) { seen.push_back(run); });
    runner.run();
    EXPECT_EQ(seen.size(), 6u);
    EXPECT_EQ(seen.front(), 0u);
    EXPECT_EQ(seen.back(), 5u);
}

TEST(ExperimentResult, SmoothedAndBucketedSeries)
{
    ExperimentResult result;
    for (int i = 0; i < 100; ++i)
        result.throughputSeries.push_back(static_cast<double>(i));
    EXPECT_EQ(result.smoothedSeries(10).size(), 100u);
    std::vector<double> buckets = result.bucketedSeries(25);
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_DOUBLE_EQ(buckets[0], 12.0); // mean of 0..24
    EXPECT_DOUBLE_EQ(buckets[3], 87.0); // mean of 75..99
}

TEST(ExperimentRunnerDeathTest, ZeroCadence)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    NoOpPolicy policy;
    ExperimentConfig config;
    config.cadence = 0;
    EXPECT_DEATH(ExperimentRunner(*system, workload, policy, config),
                 "cadence");
}

} // namespace
} // namespace core
} // namespace geo
