/**
 * @file
 * Tests for the PerfRecord feature vectors.
 */

#include <gtest/gtest.h>

#include "core/perf_record.hh"

namespace geo {
namespace core {
namespace {

TEST(PerfRecord, FeaturesHaveZColumns)
{
    PerfRecord rec;
    EXPECT_EQ(rec.features().size(), kLiveFeatureCount);
}

TEST(PerfRecord, FeatureOrderAndValues)
{
    PerfRecord rec;
    rec.file = 9;
    rec.device = 4;
    rec.rb = 100;
    rec.wb = 200;
    rec.ots = 10;
    rec.otms = 500;
    rec.cts = 12;
    rec.ctms = 250;
    std::vector<double> f = rec.features();
    EXPECT_DOUBLE_EQ(f[0], 100.0);   // rb
    EXPECT_DOUBLE_EQ(f[1], 200.0);   // wb
    EXPECT_DOUBLE_EQ(f[2], 10.5);    // open time
    EXPECT_DOUBLE_EQ(f[3], 12.25);   // close time
    EXPECT_DOUBLE_EQ(f[4], 9.0);     // fid
    EXPECT_DOUBLE_EQ(f[5], 4.0);     // fsid
}

TEST(PerfRecord, FeaturesAtVariesOnlyLocation)
{
    PerfRecord rec;
    rec.file = 3;
    rec.device = 1;
    rec.rb = 50;
    std::vector<double> at_current = rec.features();
    std::vector<double> at_other = rec.featuresAt(5);
    for (size_t i = 0; i + 1 < at_current.size(); ++i)
        EXPECT_DOUBLE_EQ(at_current[i], at_other[i]);
    EXPECT_DOUBLE_EQ(at_other.back(), 5.0);
    EXPECT_DOUBLE_EQ(at_current.back(), 1.0);
}

TEST(PerfRecord, FromObservationRoundTrips)
{
    storage::AccessObservation obs;
    obs.file = 7;
    obs.device = 2;
    obs.readBytes = 1000;
    obs.writtenBytes = 0;
    obs.startTime = 5.25;
    obs.endTime = 6.75;
    obs.throughput = 1000.0 / 1.5;

    PerfRecord rec = PerfRecord::fromObservation(obs);
    EXPECT_EQ(rec.file, 7u);
    EXPECT_EQ(rec.device, 2u);
    EXPECT_EQ(rec.rb, 1000u);
    EXPECT_EQ(rec.ots, 5);
    EXPECT_EQ(rec.otms, 250);
    EXPECT_EQ(rec.cts, 6);
    EXPECT_EQ(rec.ctms, 750);
    EXPECT_DOUBLE_EQ(rec.throughput, obs.throughput);
}

} // namespace
} // namespace core
} // namespace geo
