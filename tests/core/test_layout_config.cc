/**
 * @file
 * Tests for the layout configuration file (paper Sections V-F, VI).
 */

#include <gtest/gtest.h>

#include "core/layout_config.hh"
#include "storage/bluesky.hh"

namespace geo {
namespace core {
namespace {

TEST(LayoutConfig, CapturesLayoutAndAvailability)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId f1 = system->addFile("a", 100, 0);
    storage::FileId f2 = system->addFile("b", 100, 3);
    system->device(4).setWritable(false);

    LayoutConfig config = LayoutConfig::capture(*system);
    EXPECT_EQ(config.fileCount(), 2u);
    EXPECT_EQ(config.location(f1), 0u);
    EXPECT_EQ(config.location(f2), 3u);
    EXPECT_TRUE(config.knows(f1));
    EXPECT_FALSE(config.knows(999));
    // Device 4 is read-only: not an available candidate.
    const auto &available = config.availableDevices();
    EXPECT_EQ(available.size(), 5u);
    EXPECT_EQ(std::count(available.begin(), available.end(), 4u), 0);
}

TEST(LayoutConfig, SerializeParseRoundTrip)
{
    auto system = storage::makeBlueskySystem();
    system->addFile("a", 100, 2);
    system->addFile("b", 100, 5);
    LayoutConfig original = LayoutConfig::capture(*system);

    LayoutConfig restored;
    ASSERT_TRUE(restored.parse(original.serialize()));
    EXPECT_EQ(restored, original);
}

TEST(LayoutConfig, RejectsGarbage)
{
    LayoutConfig config;
    EXPECT_FALSE(config.parse(""));
    EXPECT_FALSE(config.parse("not a layout\n"));
    EXPECT_FALSE(config.parse("geomancy-layout-v1\nbogus 1 2\n"));
}

TEST(LayoutConfig, FileRoundTrip)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("a", 100, 1);
    LayoutConfig original = LayoutConfig::capture(*system);
    std::string path = testing::TempDir() + "/geomancy_layout_test.cfg";
    ASSERT_TRUE(original.save(path));

    LayoutConfig restored;
    ASSERT_TRUE(restored.load(path));
    EXPECT_EQ(restored.location(file), 1u);
    std::remove(path.c_str());
    EXPECT_FALSE(restored.load("/nonexistent/layout.cfg"));
}

TEST(LayoutConfig, TracksMovements)
{
    // The paper: the workload looks up latest locations from the
    // config Geomancy refreshes after any data movement.
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("a", 100, 0);
    LayoutConfig before = LayoutConfig::capture(*system);
    system->moveFile(file, 2);
    LayoutConfig after = LayoutConfig::capture(*system);
    EXPECT_EQ(before.location(file), 0u);
    EXPECT_EQ(after.location(file), 2u);
}

TEST(LayoutConfigDeathTest, UnknownFilePanics)
{
    LayoutConfig config;
    EXPECT_DEATH(config.location(1), "unknown file");
}

} // namespace
} // namespace core
} // namespace geo
