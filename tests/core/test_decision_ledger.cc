/**
 * @file
 * DecisionLedger unit tests: recording-only identity (a run with the
 * ledger attached reproduces a run without one bit-for-bit), the
 * crash-exact byte cursor across save/rewind/resume, cumulative
 * counter deltas, and the append-mode flush path.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/decision_ledger.hh"
#include "core/experiment.hh"
#include "core/geomancy.hh"
#include "core/policies.hh"
#include "storage/bluesky.hh"
#include "util/state_io.hh"

namespace geo {
namespace core {
namespace {

/** Unique scratch directory, removed on destruction. */
struct TempDir
{
    std::string path;

    explicit TempDir(const char *stem)
    {
        path = (std::filesystem::temp_directory_path() /
                (std::string("geo_test_") + stem))
                   .string();
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~TempDir() { std::filesystem::remove_all(path); }
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** One deterministic synthetic cycle's worth of recording calls. */
void
recordSyntheticCycle(DecisionLedger &ledger, uint64_t cycle)
{
    ledger.beginCycle(cycle, 10.0 * static_cast<double>(cycle), false,
                      false);
    ledger.recordPhase("monitor", 0.125, 1.0);
    ledger.recordPhase("train", 0.5, 2.0);
    std::vector<double> features = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
    std::vector<LedgerScore> scores = {{0, 100.0, 2}, {1, 200.0, 1}};
    ledger.recordCandidate(3, 0, features, scores, "selected", 1, 0.25,
                           false, true);
    ledger.recordCandidate(7, 1, features, scores, "below_min_gain", 0,
                           0.0, false, false);
    AppliedMove move;
    move.file = 3;
    move.from = 0;
    move.to = 1;
    ledger.recordOutcome(move);
    LedgerCycleSummary summary;
    summary.acted = true;
    summary.proposed = 1;
    summary.applied = 1;
    summary.admitted = ledger.advanceCumulative(0, cycle * 100);
    summary.quarantined = ledger.advanceCumulative(1, cycle * 3);
    ledger.endCycle(summary);
}

/** Fig5a-style pin: attaching a ledger must not change one decision.
 *  The ledger consumes no randomness and feeds nothing back, so two
 *  same-seed experiment runs — with and without a ledger — have to
 *  produce identical throughput series and move logs. */
TEST(DecisionLedger, RecordingOnlyIdentity)
{
    TempDir dir("ledger_identity");

    auto runOnce = [&](bool with_ledger) {
        auto system = storage::makeBlueskySystem(7);
        workload::Belle2Workload workload(*system);
        GeomancyConfig config;
        config.drl.epochs = 6;
        config.minHistory = 200;
        Geomancy geomancy(*system, workload.files(), config);
        if (with_ledger)
            geomancy.attachLedger(dir.path + "/ledger.ndjson");
        GeomancyDynamicPolicy policy(geomancy);
        ExperimentConfig econfig;
        econfig.warmupRuns = 1;
        econfig.measuredRuns = 5;
        econfig.cadence = 2;
        econfig.seed = 11;
        ExperimentRunner runner(*system, workload, policy, econfig);
        return runner.run();
    };

    ExperimentResult without = runOnce(false);
    ExperimentResult with = runOnce(true);

    ASSERT_EQ(without.totalAccesses, with.totalAccesses);
    ASSERT_EQ(without.throughputSeries.size(),
              with.throughputSeries.size());
    for (size_t i = 0; i < without.throughputSeries.size(); ++i)
        ASSERT_DOUBLE_EQ(without.throughputSeries[i],
                         with.throughputSeries[i])
            << "diverged at access " << i;
    EXPECT_EQ(without.filesMoved, with.filesMoved);
    EXPECT_EQ(without.bytesMoved, with.bytesMoved);
    ASSERT_EQ(without.moveEvents.size(), with.moveEvents.size());

    // And the ledger actually recorded the run.
    std::string text = slurp(dir.path + "/ledger.ndjson");
    EXPECT_NE(text.find("\"schema\":\"geo-ledger-1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"t\":\"cycle\""), std::string::npos);
}

/** The checkpointed byte cursor makes crash/rewind/resume ledgers
 *  byte-identical to an uninterrupted run: rows written after the cut
 *  (including a torn half-appended tail) are truncated away on
 *  restore and re-produced by the replayed cycles — no duplicates, no
 *  holes. */
TEST(DecisionLedger, CursorExactAcrossCrashRewindResume)
{
    TempDir dir("ledger_cursor");
    std::string ref_path = dir.path + "/ref.ndjson";
    std::string crash_path = dir.path + "/crash.ndjson";

    // Reference: three uninterrupted cycles.
    {
        DecisionLedger ledger(ref_path);
        for (uint64_t cycle = 1; cycle <= 3; ++cycle)
            recordSyntheticCycle(ledger, cycle);
    }
    std::string reference = slurp(ref_path);
    ASSERT_FALSE(reference.empty());

    // Crashed run: checkpoint after cycle 2, then cycle 3 happens but
    // its checkpoint never lands; the "crash" also leaves a torn
    // partial row appended to the file.
    std::ostringstream cut;
    {
        DecisionLedger ledger(crash_path);
        recordSyntheticCycle(ledger, 1);
        recordSyntheticCycle(ledger, 2);
        util::StateWriter writer(cut);
        ledger.saveState(writer);
        recordSyntheticCycle(ledger, 3);
    }
    {
        std::ofstream os(crash_path,
                         std::ios::binary | std::ios::app);
        os << "{\"t\":\"cycle_start\",\"cyc"; // torn mid-append tail
    }
    ASSERT_NE(slurp(crash_path), reference);

    // Resume: a fresh process restores the cut and replays cycle 3.
    {
        DecisionLedger ledger(crash_path);
        std::istringstream is(cut.str());
        util::StateReader reader(is);
        ledger.loadState(reader);
        recordSyntheticCycle(ledger, 3);
    }
    EXPECT_EQ(slurp(crash_path), reference);

    // No sequence number repeats or gaps in the recovered file.
    std::istringstream lines(slurp(crash_path));
    std::string line;
    uint64_t expect_seq = 0;
    bool first = true;
    while (std::getline(lines, line)) {
        if (first) { // schema header has no seq
            first = false;
            continue;
        }
        size_t pos = line.rfind("\"seq\":");
        ASSERT_NE(pos, std::string::npos) << line;
        uint64_t seq = std::stoull(line.substr(pos + 6));
        EXPECT_EQ(seq, expect_seq + 1) << line;
        expect_seq = seq;
    }
    EXPECT_GT(expect_seq, 0u);
}

/** advanceCumulative turns checkpointed monotone counters into
 *  per-cycle deltas that replay exactly: the cursor survives
 *  save/load, and a counter that appears to run backwards (fresh
 *  in-memory state after a restore) yields zero, not underflow. */
TEST(DecisionLedger, AdvanceCumulativeDeltas)
{
    TempDir dir("ledger_cumulative");
    DecisionLedger ledger(dir.path + "/l.ndjson");

    EXPECT_EQ(ledger.advanceCumulative(0, 10), 10u);
    EXPECT_EQ(ledger.advanceCumulative(0, 25), 15u);
    EXPECT_EQ(ledger.advanceCumulative(1, 7), 7u);
    // Regression below the cursor must clamp to zero (and re-anchor
    // the cursor at the observed value).
    EXPECT_EQ(ledger.advanceCumulative(0, 5), 0u);
    EXPECT_EQ(ledger.advanceCumulative(0, 8), 3u);

    std::ostringstream os;
    util::StateWriter writer(os);
    ledger.saveState(writer);

    DecisionLedger restored(dir.path + "/l2.ndjson");
    std::istringstream is(os.str());
    util::StateReader reader(is);
    restored.loadState(reader);
    // Cursors rode along in the checkpoint (slot 0 at 8, slot 1 at 7).
    EXPECT_EQ(restored.advanceCumulative(0, 30), 22u);
    EXPECT_EQ(restored.advanceCumulative(1, 9), 2u);
}

/** Steady-state flushes append rather than rewrite, but the resulting
 *  file must be indistinguishable from a full rewrite — including
 *  when something external replaces the file mid-run (the size guard
 *  refuses the append and falls back to a rewrite). */
TEST(DecisionLedger, AppendFlushSurvivesExternalTruncation)
{
    TempDir dir("ledger_append");
    std::string path = dir.path + "/l.ndjson";
    DecisionLedger ledger(path);

    recordSyntheticCycle(ledger, 1);
    std::string after_one = slurp(path);
    ASSERT_FALSE(after_one.empty());

    // Clobber the file behind the ledger's back.
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << "garbage";
    }
    recordSyntheticCycle(ledger, 2);

    // The flush must have detected the mismatch and rewritten whole.
    std::string text = slurp(path);
    EXPECT_EQ(text.compare(0, after_one.size(), after_one), 0);
    EXPECT_EQ(text.find("garbage"), std::string::npos);
    EXPECT_NE(text.find("\"cycle\":2"), std::string::npos);
}

} // namespace
} // namespace core
} // namespace geo
