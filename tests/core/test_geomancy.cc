/**
 * @file
 * Integration tests: Geomancy attached to the Bluesky system with the
 * BELLE II workload.
 */

#include <gtest/gtest.h>

#include "core/geomancy.hh"
#include "storage/bluesky.hh"
#include "workload/belle2.hh"

namespace geo {
namespace core {
namespace {

GeomancyConfig
fastConfig()
{
    GeomancyConfig config;
    config.drl.epochs = 15;
    config.daemon.windowPerDevice = 400;
    config.minHistory = 200;
    return config;
}

TEST(Geomancy, SkipsUntilEnoughHistory)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    Geomancy geomancy(*system, workload.files(), fastConfig());

    CycleReport report = geomancy.runCycle();
    EXPECT_TRUE(report.skipped);
    EXPECT_FALSE(report.acted);
    EXPECT_EQ(geomancy.cyclesRun(), 1u);
}

TEST(Geomancy, CollectsObservationsThroughAgents)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    Geomancy geomancy(*system, workload.files(), fastConfig());

    workload.executeRun();
    geomancy.runCycle(); // flushes agents
    EXPECT_GT(geomancy.replayDb().accessCount(), 200);
}

TEST(Geomancy, ActsAfterWarmup)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    Geomancy geomancy(*system, workload.files(), fastConfig());

    for (int run = 0; run < 3; ++run)
        workload.executeRun();

    bool acted = false;
    for (int cycle = 0; cycle < 8 && !acted; ++cycle) {
        workload.executeRun();
        CycleReport report = geomancy.runCycle();
        acted = report.acted;
        EXPECT_FALSE(report.skipped);
    }
    EXPECT_TRUE(acted) << "Geomancy never moved a file in 8 cycles";
    EXPECT_GT(geomancy.replayDb().movementCount(), 0);
}

TEST(Geomancy, MovesRespectCap)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    GeomancyConfig config = fastConfig();
    config.checker.maxMovesPerCycle = 3;
    config.explorationRate = 0.0;
    Geomancy geomancy(*system, workload.files(), config);

    for (int run = 0; run < 4; ++run)
        workload.executeRun();
    for (int cycle = 0; cycle < 5; ++cycle) {
        CycleReport report = geomancy.runCycle();
        EXPECT_LE(report.moves.applied, 3u);
        workload.executeRun();
    }
}

TEST(Geomancy, ExplorationCyclesHappen)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    GeomancyConfig config = fastConfig();
    config.explorationRate = 1.0; // force exploration
    config.drl.epochs = 5;
    Geomancy geomancy(*system, workload.files(), config);

    for (int run = 0; run < 3; ++run)
        workload.executeRun();
    CycleReport report = geomancy.runCycle();
    EXPECT_TRUE(report.explored);
}

TEST(Geomancy, PredictLayoutDoesNotMoveFiles)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    Geomancy geomancy(*system, workload.files(), fastConfig());

    for (int run = 0; run < 3; ++run)
        workload.executeRun();
    auto layout_before = system->layout();
    std::vector<MoveRequest> proposal = geomancy.predictLayout();
    EXPECT_EQ(system->layout(), layout_before);
    for (const MoveRequest &req : proposal) {
        EXPECT_LT(req.target, system->deviceCount());
        EXPECT_NE(req.target, system->location(req.file));
    }
}

TEST(GeomancyDeathTest, NoManagedFiles)
{
    auto system = storage::makeBlueskySystem();
    EXPECT_DEATH(Geomancy(*system, {}, fastConfig()), "managed");
}

} // namespace
} // namespace core
} // namespace geo
