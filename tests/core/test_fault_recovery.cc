/**
 * @file
 * Tests for the resilient migration pipeline: retry with backoff and
 * deadline, attempt logging in the ReplayDB (crash-safe replay), the
 * scheduler's per-device circuit breaker, and the rule that no move is
 * ever admitted onto an offline device.
 */

#include <gtest/gtest.h>

#include "core/action_checker.hh"
#include "core/control_agent.hh"
#include "core/geomancy.hh"
#include "core/movement_scheduler.hh"
#include "storage/bluesky.hh"
#include "storage/fault_injector.hh"
#include "workload/belle2.hh"

namespace geo {
namespace core {
namespace {

storage::FaultEvent
outage(storage::DeviceId device, double start, double duration)
{
    storage::FaultEvent ev;
    ev.device = device;
    ev.kind = storage::FaultKind::Outage;
    ev.start = start;
    ev.duration = duration;
    return ev;
}

/** Bluesky system + injector + file on device 0, target device 3. */
struct Fixture
{
    std::unique_ptr<storage::StorageSystem> system =
        storage::makeBlueskySystem();
    storage::FaultInjector injector{*system, {}};
    ReplayDb db;
    storage::FileId file;

    Fixture()
    {
        system->attachFaultInjector(&injector);
        file = system->addFile("f", 4 << 20, 0);
    }
};

ControlAgentConfig
fastRetry()
{
    ControlAgentConfig config;
    config.retry.maxAttempts = 3;
    config.retry.backoffBase = 10.0;
    config.retry.backoffMultiplier = 2.0;
    config.retry.jitterFraction = 0.0; // exact timings for the tests
    config.retry.moveDeadlineSeconds = 1e6;
    return config;
}

TEST(FaultRecovery, InterruptedMoveRetriedAndCompletes)
{
    Fixture fx;
    // Target offline until t = 15: the first attempt fails, the retry
    // (due at t = 10 + backoff) lands after recovery and completes.
    fx.injector.addEvent(outage(3, 0.0, 15.0));
    ControlAgent agent(*fx.system, &fx.db, fastRetry());

    MoveSummary first = agent.apply({{fx.file, 3}});
    EXPECT_EQ(first.applied, 0u);
    EXPECT_EQ(first.failed, 1u);
    EXPECT_EQ(first.requeued, 1u);
    EXPECT_EQ(agent.pendingRetries(), 1u);

    // Before the backoff expires nothing is due.
    fx.system->clock().advance(5.0);
    MoveSummary quiet = agent.apply({});
    EXPECT_TRUE(quiet.outcomes.empty());
    EXPECT_EQ(agent.pendingRetries(), 1u);

    // Past the backoff and the outage: the retry runs and succeeds.
    fx.system->clock().advance(15.0);
    MoveSummary second = agent.apply({});
    EXPECT_EQ(second.applied, 1u);
    EXPECT_EQ(agent.pendingRetries(), 0u);
    EXPECT_EQ(fx.system->location(fx.file), 3u);

    // Every attempt is visible in the ReplayDB, in order.
    auto attempts = fx.db.attemptsForFile(fx.file, 10);
    ASSERT_EQ(attempts.size(), 2u);
    EXPECT_EQ(attempts[0].outcome, AttemptOutcome::Failed);
    EXPECT_EQ(attempts[0].reason, storage::MoveFail::TargetOffline);
    EXPECT_EQ(attempts[0].attempt, 1);
    EXPECT_EQ(attempts[1].outcome, AttemptOutcome::Applied);
    EXPECT_EQ(attempts[1].attempt, 2);
}

TEST(FaultRecovery, MoveAbandonedWhenAttemptsExhausted)
{
    Fixture fx;
    fx.injector.addEvent(outage(3, 0.0, 0.0)); // permanent
    ControlAgent agent(*fx.system, &fx.db, fastRetry());

    agent.apply({{fx.file, 3}});
    for (int i = 0; i < 5; ++i) {
        fx.system->clock().advance(100.0);
        agent.apply({});
    }
    EXPECT_EQ(agent.pendingRetries(), 0u);
    EXPECT_EQ(agent.totalAbandoned(), 1u);
    EXPECT_EQ(fx.system->location(fx.file), 0u);

    auto attempts = fx.db.attemptsForFile(fx.file, 10);
    ASSERT_EQ(attempts.size(), 3u); // maxAttempts tries, all logged
    EXPECT_EQ(attempts.back().outcome, AttemptOutcome::Abandoned);
    EXPECT_EQ(attempts.back().attempt, 3);
}

TEST(FaultRecovery, MoveAbandonedAtDeadline)
{
    Fixture fx;
    fx.injector.addEvent(outage(3, 0.0, 0.0));
    ControlAgentConfig config = fastRetry();
    config.retry.maxAttempts = 100; // budget never binds...
    config.retry.moveDeadlineSeconds = 25.0; // ...the deadline does
    ControlAgent agent(*fx.system, &fx.db, config);

    agent.apply({{fx.file, 3}});
    size_t attempts_before_deadline = 0;
    for (int i = 0; i < 6; ++i) {
        fx.system->clock().advance(10.0);
        MoveSummary summary = agent.apply({});
        attempts_before_deadline += summary.failed;
    }
    EXPECT_EQ(agent.pendingRetries(), 0u);
    EXPECT_EQ(agent.totalAbandoned(), 1u);
    auto log = fx.db.attemptsForFile(fx.file, 100);
    ASSERT_GE(log.size(), 2u);
    EXPECT_EQ(log.back().outcome, AttemptOutcome::Abandoned);
    // The deadline bit long before 100 attempts.
    EXPECT_LT(log.size(), 10u);
}

TEST(FaultRecovery, NewRequestSupersedesPendingRetry)
{
    Fixture fx;
    fx.injector.addEvent(outage(3, 0.0, 0.0));
    ControlAgent agent(*fx.system, &fx.db, fastRetry());
    agent.apply({{fx.file, 3}});
    EXPECT_EQ(agent.pendingRetries(), 1u);
    // The model changed its mind: send the file to device 1 instead.
    MoveSummary summary = agent.apply({{fx.file, 1}});
    EXPECT_EQ(summary.applied, 1u);
    EXPECT_EQ(agent.pendingRetries(), 0u);
    EXPECT_EQ(fx.system->location(fx.file), 1u);
}

TEST(FaultRecovery, SkippedInvalidMovesCounted)
{
    Fixture fx;
    ControlAgent agent(*fx.system, &fx.db, fastRetry());
    MoveSummary summary = agent.apply({
        {fx.file, 0},  // no-op: already there
        {fx.file, 99}, // no such device
    });
    EXPECT_EQ(summary.requested, 2u);
    EXPECT_EQ(summary.applied, 0u);
    EXPECT_EQ(summary.skipped, 2u);
    EXPECT_EQ(summary.failed, 0u);
    EXPECT_EQ(agent.pendingRetries(), 0u); // invalid != retryable
    ASSERT_EQ(summary.outcomes.size(), 2u);
    EXPECT_EQ(summary.outcomes[0].reason,
              storage::MoveFail::SameDevice);
    EXPECT_EQ(summary.outcomes[1].reason,
              storage::MoveFail::NoSuchDevice);
    // Skips are in the attempt log too.
    EXPECT_EQ(fx.db.moveAttemptCount(), 2);
}

TEST(FaultRecovery, RestorePendingAfterCrash)
{
    Fixture fx;
    fx.injector.addEvent(outage(3, 0.0, 30.0));
    {
        ControlAgent agent(*fx.system, &fx.db, fastRetry());
        agent.apply({{fx.file, 3}});
        EXPECT_EQ(agent.pendingRetries(), 1u);
        // The agent "crashes" here: its queue dies with it.
    }
    fx.system->clock().advance(60.0); // outage over

    ControlAgent revived(*fx.system, &fx.db, fastRetry());
    EXPECT_EQ(revived.pendingRetries(), 0u);
    EXPECT_EQ(revived.restorePending(), 1u);
    EXPECT_EQ(revived.pendingRetries(), 1u);
    MoveSummary summary = revived.apply({});
    EXPECT_EQ(summary.applied, 1u);
    EXPECT_EQ(fx.system->location(fx.file), 3u);
    // Nothing left to restore: the last attempt logged is Applied.
    ControlAgent third(*fx.system, &fx.db, fastRetry());
    EXPECT_EQ(third.restorePending(), 0u);
}

TEST(FaultRecovery, CheckerNeverTargetsOfflineDevice)
{
    Fixture fx;
    fx.injector.addEvent(outage(3, 0.0, 0.0));
    fx.injector.advanceTo(1.0);
    ActionChecker checker(*fx.system);

    std::vector<storage::DeviceId> valid =
        checker.validDevices(fx.file, fx.system->deviceIds());
    EXPECT_EQ(std::count(valid.begin(), valid.end(), 3u), 0);
    // Random (exploration) moves avoid it too.
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        auto move = checker.randomMove(fx.file, rng);
        ASSERT_TRUE(move.has_value());
        EXPECT_NE(move->to, 3u);
    }
}

TEST(FaultRecovery, CheckerSkipsDegradedTargets)
{
    Fixture fx;
    storage::FaultEvent ev;
    ev.device = 3;
    ev.kind = storage::FaultKind::Degradation;
    ev.start = 0.0;
    ev.duration = 0.0;
    ev.magnitude = 0.3; // below the default minHealthFactor of 0.5
    fx.injector.addEvent(ev);
    fx.injector.advanceTo(1.0);
    ActionChecker checker(*fx.system);
    std::vector<storage::DeviceId> valid =
        checker.validDevices(fx.file, fx.system->deviceIds());
    EXPECT_EQ(std::count(valid.begin(), valid.end(), 3u), 0);
}

TEST(FaultRecovery, CheckerStaysQuietWhenSourceOffline)
{
    Fixture fx;
    fx.injector.addEvent(outage(0, 0.0, 0.0)); // the file's own device
    fx.injector.advanceTo(1.0);
    ActionChecker checker(*fx.system);
    Rng rng(11);
    EXPECT_EQ(checker.randomMove(fx.file, rng), std::nullopt);
    std::vector<CandidateScore> scores;
    for (storage::DeviceId id : fx.system->deviceIds())
        scores.push_back({id, 1000.0});
    EXPECT_EQ(checker.selectMove(fx.file, scores, rng), std::nullopt);
}

CheckedMove
moveOf(storage::FileId file, storage::DeviceId to)
{
    CheckedMove move;
    move.file = file;
    move.to = to;
    move.predictedGain = 0.5;
    return move;
}

TEST(FaultRecovery, BreakerOpensAfterRepeatedFailures)
{
    Fixture fx;
    SchedulerConfig config;
    config.fileCooldownSeconds = 0.0;
    config.checkGaps = false;
    config.breaker.failureThreshold = 3;
    config.breaker.windowSeconds = 100.0;
    config.breaker.cooldownSeconds = 50.0;
    MovementScheduler scheduler(*fx.system, fx.db, config);

    EXPECT_EQ(scheduler.breakerState(3, 0.0), BreakerState::Closed);
    scheduler.recordMoveOutcome(3, false, 1.0);
    scheduler.recordMoveOutcome(3, false, 2.0);
    EXPECT_EQ(scheduler.breakerState(3, 2.0), BreakerState::Closed);
    EXPECT_TRUE(scheduler.admit(moveOf(fx.file, 3), 2.0));
    scheduler.recordMoveOutcome(3, false, 3.0);
    EXPECT_EQ(scheduler.breakerState(3, 3.0), BreakerState::Open);

    // Open: every move onto device 3 is rejected; others still pass.
    EXPECT_FALSE(scheduler.admit(moveOf(fx.file, 3), 4.0));
    EXPECT_EQ(scheduler.rejectedByBreaker(), 1u);
    EXPECT_TRUE(scheduler.admit(moveOf(fx.file, 2), 4.0));
}

TEST(FaultRecovery, BreakerHalfOpenProbeThenClose)
{
    Fixture fx;
    storage::FileId other = fx.system->addFile("g", 1 << 20, 0);
    SchedulerConfig config;
    config.fileCooldownSeconds = 0.0;
    config.checkGaps = false;
    config.breaker.failureThreshold = 2;
    config.breaker.cooldownSeconds = 50.0;
    MovementScheduler scheduler(*fx.system, fx.db, config);
    scheduler.recordMoveOutcome(3, false, 1.0);
    scheduler.recordMoveOutcome(3, false, 2.0);
    ASSERT_EQ(scheduler.breakerState(3, 2.0), BreakerState::Open);

    // After the cooldown exactly one probe move is admitted.
    EXPECT_TRUE(scheduler.admit(moveOf(fx.file, 3), 60.0));
    EXPECT_EQ(scheduler.breakerState(3, 60.0), BreakerState::HalfOpen);
    EXPECT_FALSE(scheduler.admit(moveOf(other, 3), 60.0));

    // Probe succeeds: breaker closes, admission resumes.
    scheduler.recordMoveOutcome(3, true, 61.0);
    EXPECT_EQ(scheduler.breakerState(3, 61.0), BreakerState::Closed);
    EXPECT_TRUE(scheduler.admit(moveOf(other, 3), 62.0));
}

TEST(FaultRecovery, BreakerReopensOnFailedProbe)
{
    Fixture fx;
    SchedulerConfig config;
    config.fileCooldownSeconds = 0.0;
    config.checkGaps = false;
    config.breaker.failureThreshold = 2;
    config.breaker.cooldownSeconds = 50.0;
    MovementScheduler scheduler(*fx.system, fx.db, config);
    scheduler.recordMoveOutcome(3, false, 1.0);
    scheduler.recordMoveOutcome(3, false, 2.0);
    EXPECT_TRUE(scheduler.admit(moveOf(fx.file, 3), 60.0)); // probe
    scheduler.recordMoveOutcome(3, false, 61.0);
    EXPECT_EQ(scheduler.breakerState(3, 61.0), BreakerState::Open);
    EXPECT_FALSE(scheduler.admit(moveOf(fx.file, 3), 62.0));
    // A fresh cooldown must elapse before the next probe.
    EXPECT_TRUE(scheduler.admit(moveOf(fx.file, 3), 115.0));
}

TEST(FaultRecovery, BreakerWindowForgetsOldFailures)
{
    Fixture fx;
    SchedulerConfig config;
    config.breaker.failureThreshold = 3;
    config.breaker.windowSeconds = 10.0;
    MovementScheduler scheduler(*fx.system, fx.db, config);
    scheduler.recordMoveOutcome(3, false, 0.0);
    scheduler.recordMoveOutcome(3, false, 1.0);
    // Third failure arrives after the first two left the window.
    scheduler.recordMoveOutcome(3, false, 50.0);
    EXPECT_EQ(scheduler.breakerState(3, 50.0), BreakerState::Closed);
}

TEST(FaultRecovery, GeomancyNeverMovesOntoOfflineDevice)
{
    // End-to-end: a mount dies mid-run; from that point on no
    // movement may land on it.
    auto system = storage::makeBlueskySystem();
    storage::FaultInjector injector(*system, {});
    system->attachFaultInjector(&injector);
    workload::Belle2Workload workload(*system);

    GeomancyConfig config;
    config.drl.epochs = 8;
    config.minHistory = 200;
    config.useScheduler = true;
    config.scheduler.checkGaps = false;
    config.scheduler.fileCooldownSeconds = 0.0;
    Geomancy geomancy(*system, workload.files(), config);

    for (int run = 0; run < 4; ++run)
        workload.executeRun();
    for (int cycle = 0; cycle < 2; ++cycle) {
        geomancy.runCycle();
        workload.executeRun();
    }
    const storage::DeviceId dead = 2;
    double death_time = system->clock().now();
    injector.addEvent(outage(dead, death_time, 0.0));
    for (int cycle = 0; cycle < 6; ++cycle) {
        workload.executeRun();
        geomancy.runCycle();
    }
    for (const MovementRecord &move :
         geomancy.replayDb().recentMovements(1000)) {
        if (move.timestamp > death_time) {
            EXPECT_NE(move.toDevice, dead)
                << "move onto dead device at t=" << move.timestamp;
        }
    }
}

TEST(FaultRecovery, ScenarioIsSeedDeterministic)
{
    // The same faulty scenario run twice from the same seed must
    // produce bit-identical movement histories and layouts.
    auto run = [](uint64_t seed) {
        auto system = storage::makeBlueskySystem();
        storage::FaultInjectorConfig fconfig;
        fconfig.seed = seed ^ 0x5eedULL;
        storage::FaultInjector injector(*system, fconfig);
        system->attachFaultInjector(&injector);
        injector.addEvent({1, storage::FaultKind::TransientErrors, 0.0,
                           0.0, 0.2});
        injector.addEvent({2, storage::FaultKind::Degradation, 50.0,
                           0.0, 0.4});
        workload::Belle2Config wconfig;
        wconfig.seed = seed;
        workload::Belle2Workload workload(*system, wconfig);
        GeomancyConfig config;
        config.drl.epochs = 8;
        config.minHistory = 200;
        config.seed = seed;
        config.useScheduler = true;
        Geomancy geomancy(*system, workload.files(), config);
        for (int run_i = 0; run_i < 6; ++run_i) {
            workload.executeRun();
            geomancy.runCycle();
        }
        std::vector<std::tuple<double, storage::FileId,
                               storage::DeviceId>> history;
        for (const MovementRecord &m :
             geomancy.replayDb().recentMovements(1000))
            history.emplace_back(m.timestamp, m.file, m.toDevice);
        return std::make_pair(history, system->layout());
    };
    auto a = run(42);
    auto b = run(42);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

} // namespace
} // namespace core
} // namespace geo
