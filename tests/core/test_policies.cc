/**
 * @file
 * Tests for the baseline placement policies.
 */

#include <gtest/gtest.h>

#include "core/policies.hh"
#include "storage/system.hh"

namespace geo {
namespace core {
namespace {

/** Three devices with distinct, quiet bandwidths: 0 fastest. */
storage::StorageSystem
makeSystem()
{
    storage::StorageSystem system;
    for (int i = 0; i < 3; ++i) {
        storage::DeviceConfig config;
        config.name = "dev" + std::to_string(i);
        config.readBandwidth = 3e9 / (i + 1);
        config.writeBandwidth = config.readBandwidth / 2;
        config.capacityBytes = 1ULL << 30;
        config.traffic.baseLoad = 0.0;
        config.traffic.diurnalAmplitude = 0.0;
        config.traffic.burstProbability = 0.0;
        config.traffic.noiseAmplitude = 0.0;
        system.addDevice(config);
    }
    return system;
}

struct Fixture
{
    storage::StorageSystem system = makeSystem();
    std::vector<storage::FileId> files;
    std::map<storage::FileId, FileUsage> usage;
    std::vector<storage::DeviceId> ranked = {0, 1, 2};
    Rng rng{99};

    Fixture()
    {
        // Six files, all starting on the slowest device.
        for (int i = 0; i < 6; ++i)
            files.push_back(
                system.addFile("f" + std::to_string(i), 1000, 2));
        // usage: file i accessed (i+1)*10 times, last used at index i.
        for (size_t i = 0; i < files.size(); ++i) {
            FileUsage u;
            u.accessCount = (i + 1) * 10;
            u.lastAccessIndex = i + 1;
            usage[files[i]] = u;
        }
    }

    PolicyContext
    context()
    {
        return {system, files, usage, ranked, rng};
    }
};

TEST(LruPolicy, MostRecentToFastest)
{
    Fixture fx;
    LruPolicy policy;
    PolicyContext ctx = fx.context();
    size_t moved = policy.rebalance(ctx);
    EXPECT_GT(moved, 0u);
    // Files 5,4 most recent -> device 0; 3,2 -> device 1; 1,0 -> 2.
    EXPECT_EQ(fx.system.location(fx.files[5]), 0u);
    EXPECT_EQ(fx.system.location(fx.files[4]), 0u);
    EXPECT_EQ(fx.system.location(fx.files[3]), 1u);
    EXPECT_EQ(fx.system.location(fx.files[2]), 1u);
    EXPECT_EQ(fx.system.location(fx.files[1]), 2u);
    EXPECT_EQ(fx.system.location(fx.files[0]), 2u);
    EXPECT_EQ(policy.name(), "LRU");
    EXPECT_TRUE(policy.isDynamic());
}

TEST(MruPolicy, MostRecentToSlowest)
{
    Fixture fx;
    MruPolicy policy;
    PolicyContext ctx = fx.context();
    policy.rebalance(ctx);
    EXPECT_EQ(fx.system.location(fx.files[5]), 2u);
    EXPECT_EQ(fx.system.location(fx.files[0]), 0u);
}

TEST(LfuPolicy, MostFrequentToFastest)
{
    Fixture fx;
    // Make frequency ordering differ from recency: file 0 hottest.
    fx.usage[fx.files[0]].accessCount = 1000;
    LfuPolicy policy;
    PolicyContext ctx = fx.context();
    policy.rebalance(ctx);
    EXPECT_EQ(fx.system.location(fx.files[0]), 0u);
}

TEST(GroupedPolicy, RemainderGoesToSlowest)
{
    Fixture fx;
    // Add a 7th file: 7 files / 3 devices = groups of 2, remainder 1.
    fx.files.push_back(fx.system.addFile("f6", 1000, 2));
    FileUsage u;
    u.accessCount = 1;
    u.lastAccessIndex = 0; // least recent of all
    fx.usage[fx.files.back()] = u;
    LruPolicy policy;
    PolicyContext ctx = fx.context();
    policy.rebalance(ctx);
    EXPECT_EQ(fx.system.location(fx.files.back()), 2u);
}

TEST(RandomPolicy, StaticPlacesOnlyOnce)
{
    Fixture fx;
    RandomPolicy policy(/*dynamic=*/false);
    EXPECT_FALSE(policy.isDynamic());
    PolicyContext ctx = fx.context();
    policy.rebalance(ctx);
    auto layout = fx.system.layout();
    PolicyContext ctx2 = fx.context();
    EXPECT_EQ(policy.rebalance(ctx2), 0u);
    EXPECT_EQ(fx.system.layout(), layout);
}

TEST(RandomPolicy, DynamicReshuffles)
{
    Fixture fx;
    RandomPolicy policy(/*dynamic=*/true);
    EXPECT_TRUE(policy.isDynamic());
    size_t total_moves = 0;
    for (int i = 0; i < 5; ++i) {
        PolicyContext ctx = fx.context();
        total_moves += policy.rebalance(ctx);
    }
    EXPECT_GT(total_moves, 5u);
    EXPECT_EQ(policy.name(), "random dynamic");
}

TEST(SingleMountPolicy, PinsEverything)
{
    Fixture fx;
    SingleMountPolicy policy(1);
    PolicyContext ctx = fx.context();
    size_t moved = policy.rebalance(ctx);
    EXPECT_EQ(moved, 6u);
    for (storage::FileId file : fx.files)
        EXPECT_EQ(fx.system.location(file), 1u);
    // Second call is a no-op (static).
    PolicyContext ctx2 = fx.context();
    EXPECT_EQ(policy.rebalance(ctx2), 0u);
}

TEST(NoOpPolicy, NeverMoves)
{
    Fixture fx;
    NoOpPolicy policy;
    auto layout = fx.system.layout();
    PolicyContext ctx = fx.context();
    EXPECT_EQ(policy.rebalance(ctx), 0u);
    EXPECT_EQ(fx.system.layout(), layout);
}

TEST(GroupedPolicy, SkipsOfflineAndDegradedDevices)
{
    Fixture fx;
    // Device 0 (fastest) down, device 1 degraded below half health:
    // every file must land on device 2, the only usable target.
    fx.system.device(0).setOffline(true);
    fx.system.device(1).setHealthFactor(0.3);
    LruPolicy policy;
    PolicyContext ctx = fx.context();
    policy.rebalance(ctx);
    for (storage::FileId file : fx.files)
        EXPECT_EQ(fx.system.location(file), 2u);
}

TEST(GroupedPolicy, AllDevicesDownHoldsLayout)
{
    Fixture fx;
    for (storage::DeviceId d : fx.system.deviceIds())
        fx.system.device(d).setOffline(true);
    auto layout = fx.system.layout();
    LruPolicy policy;
    PolicyContext ctx = fx.context();
    EXPECT_EQ(policy.rebalance(ctx), 0u);
    EXPECT_EQ(fx.system.layout(), layout);
}

TEST(RandomPolicy, SkipsOfflineAndReadOnlyDevices)
{
    Fixture fx;
    fx.system.device(0).setOffline(true);
    fx.system.device(1).setWritable(false);
    RandomPolicy policy(/*dynamic=*/true);
    for (int i = 0; i < 3; ++i) {
        PolicyContext ctx = fx.context();
        policy.rebalance(ctx);
        for (storage::FileId file : fx.files)
            EXPECT_EQ(fx.system.location(file), 2u);
    }
}

TEST(Policies, NamesDistinct)
{
    EXPECT_EQ(LruPolicy().name(), "LRU");
    EXPECT_EQ(MruPolicy().name(), "MRU");
    EXPECT_EQ(LfuPolicy().name(), "LFU");
    EXPECT_EQ(RandomPolicy(false).name(), "random static");
    EXPECT_EQ(SingleMountPolicy(0).name(), "single-mount(0)");
}

} // namespace
} // namespace core
} // namespace geo
