/**
 * @file
 * Tests for ReplayDB CSV export/import.
 */

#include <gtest/gtest.h>

#include "core/replay_db.hh"

namespace geo {
namespace core {
namespace {

PerfRecord
record(storage::FileId file, double throughput)
{
    PerfRecord rec;
    rec.file = file;
    rec.device = static_cast<storage::DeviceId>(file % 3);
    rec.rb = 1000 + file;
    rec.wb = file % 2 ? 500 : 0;
    rec.ots = static_cast<int64_t>(file) * 10;
    rec.otms = 250;
    rec.cts = rec.ots + 1;
    rec.ctms = 750;
    rec.throughput = throughput;
    return rec;
}

TEST(ReplayDbCsv, ExportHasHeaderAndRows)
{
    ReplayDb db;
    db.insertAccess(record(1, 100.0));
    db.insertAccess(record(2, 200.0));
    std::string csv = db.exportAccessesCsv();
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
    EXPECT_EQ(csv.rfind("file_id,", 0), 0u);
}

TEST(ReplayDbCsv, RoundTripPreservesRecords)
{
    ReplayDb source;
    for (int i = 0; i < 50; ++i)
        source.insertAccess(record(static_cast<storage::FileId>(i),
                                   100.0 + i * 0.5));
    std::string csv = source.exportAccessesCsv();

    ReplayDb target;
    EXPECT_EQ(target.importAccessesCsv(csv), 50u);
    EXPECT_EQ(target.accessCount(), 50);

    std::vector<PerfRecord> a = source.recentAccesses(50);
    std::vector<PerfRecord> b = target.recentAccesses(50);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].file, b[i].file);
        EXPECT_EQ(a[i].device, b[i].device);
        EXPECT_EQ(a[i].rb, b[i].rb);
        EXPECT_EQ(a[i].wb, b[i].wb);
        EXPECT_EQ(a[i].ots, b[i].ots);
        EXPECT_EQ(a[i].otms, b[i].otms);
        EXPECT_DOUBLE_EQ(a[i].throughput, b[i].throughput);
    }
}

TEST(ReplayDbCsv, EmptyDatabaseExportsHeaderOnly)
{
    ReplayDb db;
    std::string csv = db.exportAccessesCsv();
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
    ReplayDb target;
    EXPECT_EQ(target.importAccessesCsv(csv), 0u);
}

TEST(ReplayDbCsv, MalformedRowsSkipped)
{
    ReplayDb db;
    std::string csv =
        "file_id,device_id,rb,wb,ots,otms,cts,ctms,throughput\n"
        "1,0,100,0,5,0,6,0,123.5\n"
        "broken,row\n";
    EXPECT_EQ(db.importAccessesCsv(csv), 1u);
    EXPECT_EQ(db.accessCount(), 1);
}

} // namespace
} // namespace core
} // namespace geo
