/**
 * @file
 * Tests for the per-device monitoring agent.
 */

#include <gtest/gtest.h>

#include "core/monitoring_agent.hh"

namespace geo {
namespace core {
namespace {

storage::AccessObservation
obsOn(storage::DeviceId device, storage::FileId file = 1)
{
    storage::AccessObservation obs;
    obs.file = file;
    obs.device = device;
    obs.readBytes = 100;
    obs.startTime = 1.0;
    obs.endTime = 2.0;
    obs.throughput = 100.0;
    return obs;
}

TEST(MonitoringAgent, FiltersOtherDevices)
{
    std::vector<PerfRecord> received;
    MonitoringAgent agent(
        3, [&](const std::vector<PerfRecord> &batch) {
            received.insert(received.end(), batch.begin(), batch.end());
        },
        1);
    agent.observe(obsOn(2));
    agent.observe(obsOn(3));
    agent.observe(obsOn(4));
    EXPECT_EQ(agent.observedCount(), 1u);
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].device, 3u);
}

TEST(MonitoringAgent, BatchesBeforeForwarding)
{
    std::vector<size_t> batch_sizes;
    MonitoringAgent agent(
        0, [&](const std::vector<PerfRecord> &batch) {
            batch_sizes.push_back(batch.size());
        },
        4);
    for (int i = 0; i < 10; ++i)
        agent.observe(obsOn(0));
    // 10 observations with batch size 4: two full batches forwarded.
    EXPECT_EQ(batch_sizes, (std::vector<size_t>{4, 4}));
    EXPECT_EQ(agent.batchesSent(), 2u);

    agent.flush();
    EXPECT_EQ(batch_sizes.back(), 2u);
    EXPECT_EQ(agent.batchesSent(), 3u);
}

TEST(MonitoringAgent, FlushOnEmptyIsNoOp)
{
    int calls = 0;
    MonitoringAgent agent(
        0, [&](const std::vector<PerfRecord> &) { ++calls; }, 4);
    agent.flush();
    EXPECT_EQ(calls, 0);
}

TEST(MonitoringAgent, RecordsCarryMeasuredThroughput)
{
    std::vector<PerfRecord> received;
    MonitoringAgent agent(
        0, [&](const std::vector<PerfRecord> &batch) {
            received = batch;
        },
        1);
    agent.observe(obsOn(0, 42));
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].file, 42u);
    EXPECT_DOUBLE_EQ(received[0].throughput, 100.0);
    EXPECT_EQ(received[0].rb, 100u);
}

TEST(MonitoringAgent, BatchBoundaryIsExact)
{
    // Exactly batch_size observations forward exactly one batch, with
    // nothing left pending: a flush right after is a no-op.
    std::vector<size_t> batch_sizes;
    MonitoringAgent agent(
        0, [&](const std::vector<PerfRecord> &batch) {
            batch_sizes.push_back(batch.size());
        },
        4);
    for (int i = 0; i < 4; ++i)
        agent.observe(obsOn(0));
    EXPECT_EQ(batch_sizes, (std::vector<size_t>{4}));
    agent.flush();
    EXPECT_EQ(batch_sizes, (std::vector<size_t>{4}));
    EXPECT_EQ(agent.batchesSent(), 1u);

    // The next observation starts a fresh batch of one.
    agent.observe(obsOn(0));
    agent.flush();
    EXPECT_EQ(batch_sizes, (std::vector<size_t>{4, 1}));
}

TEST(MonitoringAgent, FailedAccessObservedAsFailedRecord)
{
    // A fault-injected access must reach the ReplayDB as a failed,
    // zero-throughput sample — that collapse is the training signal
    // that drives files off a dying device.
    std::vector<PerfRecord> received;
    MonitoringAgent agent(
        0, [&](const std::vector<PerfRecord> &batch) {
            received = batch;
        },
        1);
    storage::AccessObservation obs = obsOn(0, 7);
    obs.failed = true;
    obs.throughput = 0.0;
    obs.readBytes = 0;
    agent.observe(obs);
    ASSERT_EQ(received.size(), 1u);
    EXPECT_TRUE(received[0].failed);
    EXPECT_DOUBLE_EQ(received[0].throughput, 0.0);
    EXPECT_EQ(received[0].file, 7u);
}

TEST(MonitoringAgent, MixedOutcomesKeepOrderWithinBatch)
{
    std::vector<PerfRecord> received;
    MonitoringAgent agent(
        0, [&](const std::vector<PerfRecord> &batch) {
            received = batch;
        },
        3);
    storage::AccessObservation ok = obsOn(0, 1);
    storage::AccessObservation bad = obsOn(0, 2);
    bad.failed = true;
    bad.throughput = 0.0;
    agent.observe(ok);
    agent.observe(bad);
    agent.observe(ok);
    ASSERT_EQ(received.size(), 3u);
    EXPECT_FALSE(received[0].failed);
    EXPECT_TRUE(received[1].failed);
    EXPECT_FALSE(received[2].failed);
}

TEST(MonitoringAgentDeathTest, InvalidConstruction)
{
    EXPECT_DEATH(MonitoringAgent(0, nullptr, 1), "sink");
    EXPECT_DEATH(MonitoringAgent(
                     0, [](const std::vector<PerfRecord> &) {}, 0),
                 "batch");
}

} // namespace
} // namespace core
} // namespace geo
