/**
 * @file
 * Tests for the Action Checker.
 */

#include <gtest/gtest.h>

#include "core/action_checker.hh"
#include "storage/bluesky.hh"

namespace geo {
namespace core {
namespace {

std::vector<CandidateScore>
scores(std::initializer_list<std::pair<storage::DeviceId, double>> list)
{
    std::vector<CandidateScore> out;
    for (const auto &[device, tp] : list)
        out.push_back({device, tp});
    return out;
}

TEST(ActionChecker, ValidDevicesFiltersCapacityAndWritability)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 1000, 0);
    system->device(1).setWritable(false);
    ActionChecker checker(*system);

    std::vector<storage::DeviceId> valid =
        checker.validDevices(file, {0, 1, 2, 99});
    // 0 = current (always valid), 1 read-only, 2 fine, 99 missing.
    EXPECT_EQ(valid, (std::vector<storage::DeviceId>{0, 2}));
}

TEST(ActionChecker, SelectsHighestPredictedMove)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 1000, 0);
    ActionChecker checker(*system);
    Rng rng(1);
    auto move = checker.selectMove(
        file, scores({{0, 100.0}, {1, 300.0}, {2, 200.0}}), rng);
    ASSERT_TRUE(move.has_value());
    EXPECT_EQ(move->to, 1u);
    EXPECT_EQ(move->from, 0u);
    EXPECT_FALSE(move->random);
    EXPECT_NEAR(move->predictedGain, 2.0, 1e-9);
}

TEST(ActionChecker, TiedScoresPickLowestDeviceId)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 1000, 0);
    ActionChecker checker(*system);
    Rng rng(7);
    // Two devices tie on predicted throughput, the higher id listed
    // first.  The argmax must pin to the lowest device id, so shard
    // partitioning (which can reorder candidate lists) cannot change
    // the selected move.
    auto move = checker.selectMove(
        file, scores({{0, 100.0}, {3, 300.0}, {2, 300.0}}), rng);
    ASSERT_TRUE(move.has_value());
    EXPECT_EQ(move->to, 2u);
    EXPECT_FALSE(move->random);
}

TEST(ActionChecker, StayPutWhenCurrentBest)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 1000, 0);
    ActionChecker checker(*system);
    Rng rng(2);
    auto move = checker.selectMove(
        file, scores({{0, 300.0}, {1, 100.0}}), rng);
    EXPECT_FALSE(move.has_value());
}

TEST(ActionChecker, SmallGainsNotWorthMoving)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 1000, 0);
    CheckerConfig config;
    config.minRelativeGain = 0.10;
    ActionChecker checker(*system, config);
    Rng rng(3);
    // 5% predicted gain is below the 10% bar.
    auto move = checker.selectMove(
        file, scores({{0, 100.0}, {1, 105.0}}), rng);
    EXPECT_FALSE(move.has_value());
}

TEST(ActionChecker, RandomFallbackWhenAllInvalid)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 1000, 0);
    ActionChecker checker(*system);
    Rng rng(4);
    // Candidate list names only a missing device: fall back to random.
    auto move = checker.selectMove(file, scores({{99, 500.0}}), rng);
    ASSERT_TRUE(move.has_value());
    EXPECT_TRUE(move->random);
    EXPECT_NE(move->to, 0u);
    EXPECT_LT(move->to, system->deviceCount());
}

TEST(ActionChecker, RandomMoveTargetsValidDevice)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 1000, 2);
    for (storage::DeviceId d : {0u, 1u, 3u})
        system->device(d).setWritable(false);
    ActionChecker checker(*system);
    Rng rng(5);
    for (int i = 0; i < 20; ++i) {
        auto move = checker.randomMove(file, rng);
        ASSERT_TRUE(move.has_value());
        EXPECT_TRUE(move->to == 4u || move->to == 5u);
    }
}

TEST(ActionChecker, RandomMoveImpossibleReturnsEmpty)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 1000, 0);
    for (storage::DeviceId d : system->deviceIds())
        if (d != 0)
            system->device(d).setWritable(false);
    ActionChecker checker(*system);
    Rng rng(6);
    EXPECT_FALSE(checker.randomMove(file, rng).has_value());
}

TEST(ActionChecker, CapMovesKeepsHighestGains)
{
    auto system = storage::makeBlueskySystem();
    CheckerConfig config;
    config.maxMovesPerCycle = 2;
    ActionChecker checker(*system, config);
    std::vector<CheckedMove> moves(5);
    for (size_t i = 0; i < moves.size(); ++i) {
        moves[i].file = i;
        moves[i].predictedGain = static_cast<double>(i);
    }
    std::vector<CheckedMove> capped = checker.capMoves(std::move(moves));
    ASSERT_EQ(capped.size(), 2u);
    EXPECT_EQ(capped[0].file, 4u);
    EXPECT_EQ(capped[1].file, 3u);
}

TEST(ActionCheckerDeathTest, ZeroMaxMoves)
{
    auto system = storage::makeBlueskySystem();
    CheckerConfig config;
    config.maxMovesPerCycle = 0;
    EXPECT_DEATH(ActionChecker(*system, config), "maxMoves");
}

} // namespace
} // namespace core
} // namespace geo
