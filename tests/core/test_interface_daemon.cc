/**
 * @file
 * Tests for the Interface Daemon's storage and batch preparation.
 */

#include <gtest/gtest.h>

#include "core/interface_daemon.hh"

namespace geo {
namespace core {
namespace {

PerfRecord
record(storage::FileId file, storage::DeviceId device, double throughput)
{
    PerfRecord rec;
    rec.file = file;
    rec.device = device;
    rec.rb = 1000 + file * 10;
    rec.ots = static_cast<int64_t>(file);
    rec.cts = static_cast<int64_t>(file) + 1;
    rec.throughput = throughput;
    return rec;
}

TEST(InterfaceDaemon, PersistsBatches)
{
    ReplayDb db;
    InterfaceDaemon daemon(db);
    daemon.receiveBatch({record(1, 0, 10.0), record(2, 1, 20.0)});
    EXPECT_EQ(db.accessCount(), 2);
    EXPECT_EQ(daemon.batchesReceived(), 1u);
}

TEST(InterfaceDaemon, ChargesTransferOverhead)
{
    ReplayDb db;
    DaemonConfig config;
    config.batchTransferSeconds = 0.003;
    InterfaceDaemon daemon(db, config);
    daemon.receiveBatch({record(1, 0, 10.0)});
    daemon.receiveBatch({record(2, 0, 10.0)});
    EXPECT_NEAR(daemon.transferOverheadSeconds(), 0.006, 1e-12);
}

TEST(InterfaceDaemon, EmptyBatchIgnored)
{
    ReplayDb db;
    InterfaceDaemon daemon(db);
    daemon.receiveBatch({});
    EXPECT_EQ(daemon.batchesReceived(), 0u);
    EXPECT_DOUBLE_EQ(daemon.transferOverheadSeconds(), 0.0);
}

TEST(InterfaceDaemon, TrainingBatchEmptyWithoutData)
{
    ReplayDb db;
    InterfaceDaemon daemon(db);
    TrainingBatch batch = daemon.buildTrainingBatch({0, 1});
    EXPECT_TRUE(batch.dataset.empty());
}

TEST(InterfaceDaemon, TrainingBatchNormalizedAndAligned)
{
    ReplayDb db;
    DaemonConfig config;
    config.smoothingWindow = 1;
    InterfaceDaemon daemon(db, config);
    std::vector<PerfRecord> batch;
    for (int i = 0; i < 50; ++i)
        batch.push_back(record(static_cast<storage::FileId>(i), i % 2,
                               100.0 + i));
    daemon.receiveBatch(batch);

    TrainingBatch training = daemon.buildTrainingBatch({0, 1});
    EXPECT_EQ(training.dataset.size(), 50u);
    EXPECT_EQ(training.dataset.inputs.cols(), kLiveFeatureCount);
    for (double v : training.dataset.inputs.data()) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
    // Targets denormalize back to the stored throughputs.
    EXPECT_NEAR(training.denormalizeTarget(
                    training.dataset.targets.at(0, 0)),
                100.0, 1e-6);
    EXPECT_NEAR(training.denormalizeTarget(
                    training.dataset.targets.at(49, 0)),
                149.0, 1e-6);
}

TEST(InterfaceDaemon, TrainingBatchChronologicalAcrossDevices)
{
    ReplayDb db;
    DaemonConfig config;
    config.smoothingWindow = 1;
    InterfaceDaemon daemon(db, config);
    // Interleave devices; the merged batch must follow insertion order.
    daemon.receiveBatch({record(1, 0, 10.0), record(2, 1, 20.0),
                         record(3, 0, 30.0), record(4, 1, 40.0)});
    TrainingBatch training = daemon.buildTrainingBatch({0, 1});
    ASSERT_EQ(training.dataset.size(), 4u);
    for (size_t r = 0; r < 4; ++r) {
        EXPECT_NEAR(training.denormalizeTarget(
                        training.dataset.targets.at(r, 0)),
                    10.0 * static_cast<double>(r + 1), 1e-6);
    }
}

TEST(InterfaceDaemon, WindowPerDeviceLimits)
{
    ReplayDb db;
    DaemonConfig config;
    config.windowPerDevice = 5;
    config.smoothingWindow = 1;
    InterfaceDaemon daemon(db, config);
    std::vector<PerfRecord> records;
    for (int i = 0; i < 20; ++i)
        records.push_back(record(static_cast<storage::FileId>(i), 0, i));
    daemon.receiveBatch(records);
    TrainingBatch training = daemon.buildTrainingBatch({0});
    EXPECT_EQ(training.dataset.size(), 5u);
}

TEST(InterfaceDaemon, SmoothingAppliedToTargets)
{
    ReplayDb db;
    DaemonConfig smooth_config;
    smooth_config.smoothingWindow = 4;
    InterfaceDaemon daemon(db, smooth_config);
    // Alternating throughputs: smoothing pulls them toward the mean.
    std::vector<PerfRecord> records;
    for (int i = 0; i < 40; ++i)
        records.push_back(record(static_cast<storage::FileId>(i), 0,
                                 i % 2 ? 200.0 : 100.0));
    daemon.receiveBatch(records);
    TrainingBatch training = daemon.buildTrainingBatch({0});
    double last = training.denormalizeTarget(
        training.dataset.targets.at(39, 0));
    EXPECT_GT(last, 120.0);
    EXPECT_LT(last, 180.0);
}

TEST(InterfaceDaemon, NormalizeFeaturesHelper)
{
    ReplayDb db;
    InterfaceDaemon daemon(db);
    std::vector<PerfRecord> records;
    for (int i = 0; i < 30; ++i)
        records.push_back(record(static_cast<storage::FileId>(i), i % 3,
                                 100.0 + i));
    daemon.receiveBatch(records);
    TrainingBatch training = daemon.buildTrainingBatch({0, 1, 2});
    std::vector<double> normalized =
        training.normalizeFeatures(records[10].features());
    EXPECT_EQ(normalized.size(), kLiveFeatureCount);
    for (double v : normalized) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(InterfaceDaemonDeathTest, BadConfig)
{
    ReplayDb db;
    DaemonConfig config;
    config.windowPerDevice = 0;
    EXPECT_DEATH(InterfaceDaemon(db, config), "windowPerDevice");
}

} // namespace
} // namespace core
} // namespace geo
