/**
 * @file
 * Tests for the latency modeling target (paper Section V-C future
 * work): the Interface Daemon can build latency targets, the engine
 * tracks the target kind, and the Action Checker inverts its
 * comparisons for lower-is-better models.
 */

#include <gtest/gtest.h>

#include "core/action_checker.hh"
#include "core/drl_engine.hh"
#include "storage/bluesky.hh"

namespace geo {
namespace core {
namespace {

PerfRecord
record(storage::FileId file, storage::DeviceId device, double duration,
       int64_t at)
{
    PerfRecord rec;
    rec.file = file;
    rec.device = device;
    rec.rb = 1000000;
    rec.ots = at;
    rec.otms = 0;
    rec.cts = at + static_cast<int64_t>(duration);
    rec.ctms = static_cast<int64_t>((duration -
                                     std::floor(duration)) * 1000.0);
    rec.throughput = 1e6 / duration;
    return rec;
}

TEST(LatencyTarget, DaemonBuildsDurationTargets)
{
    ReplayDb db;
    DaemonConfig config;
    config.target = ModelTarget::Latency;
    config.smoothingWindow = 1;
    InterfaceDaemon daemon(db, config);

    std::vector<PerfRecord> records;
    for (int i = 0; i < 30; ++i)
        records.push_back(record(i, 0, 2.5, i * 10));
    daemon.receiveBatch(records);

    TrainingBatch batch = daemon.buildTrainingBatch({0});
    EXPECT_EQ(batch.target, ModelTarget::Latency);
    ASSERT_EQ(batch.dataset.size(), 30u);
    // All durations equal 2.5 s -> constant column maps to 0.5 and
    // denormalizes back to 2.5.
    EXPECT_NEAR(batch.denormalizeTarget(batch.dataset.targets.at(0, 0)),
                2.5, 0.01);
}

TEST(LatencyTarget, EngineTracksTargetKind)
{
    ReplayDb db;
    DaemonConfig config;
    config.target = ModelTarget::Latency;
    config.smoothingWindow = 1;
    InterfaceDaemon daemon(db, config);
    Rng rng(7);
    std::vector<PerfRecord> records;
    for (int i = 0; i < 400; ++i) {
        double duration = 1.0 + 0.5 * static_cast<double>(i % 3) +
                          rng.uniform(0.0, 0.1);
        records.push_back(record(i % 8,
                                 static_cast<storage::DeviceId>(i % 3),
                                 duration, i * 5));
    }
    daemon.receiveBatch(records);

    DrlConfig engine_config;
    engine_config.epochs = 30;
    DrlEngine engine(engine_config);
    EXPECT_FALSE(engine.lowerIsBetter());
    RetrainStats stats = engine.retrain(daemon.buildTrainingBatch({0, 1, 2}));
    ASSERT_TRUE(stats.trained);
    EXPECT_TRUE(engine.lowerIsBetter());
    EXPECT_EQ(engine.targetKind(), ModelTarget::Latency);
}

TEST(LatencyTarget, CheckerPrefersLowerWhenLatency)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 1000, 0);
    ActionChecker checker(*system);
    Rng rng(3);
    std::vector<CandidateScore> scores = {
        {0, 5.0}, // stay: 5 s predicted latency
        {1, 2.0}, // device 1: 2 s
        {2, 9.0},
    };
    auto move =
        checker.selectMove(file, scores, rng, /*lower_is_better=*/true);
    ASSERT_TRUE(move.has_value());
    EXPECT_EQ(move->to, 1u);
    EXPECT_NEAR(move->predictedGain, 0.6, 1e-9); // (5 - 2) / 5

    // Throughput orientation on the same scores picks device 2.
    auto tp_move =
        checker.selectMove(file, scores, rng, /*lower_is_better=*/false);
    ASSERT_TRUE(tp_move.has_value());
    EXPECT_EQ(tp_move->to, 2u);
}

TEST(LatencyTarget, CheckerStaysWhenCurrentLowest)
{
    auto system = storage::makeBlueskySystem();
    storage::FileId file = system->addFile("f", 1000, 0);
    ActionChecker checker(*system);
    Rng rng(4);
    std::vector<CandidateScore> scores = {
        {0, 1.0}, // stay is fastest
        {1, 2.0},
    };
    EXPECT_FALSE(
        checker.selectMove(file, scores, rng, true).has_value());
}

} // namespace
} // namespace core
} // namespace geo
