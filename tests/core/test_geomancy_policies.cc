/**
 * @file
 * Tests for the Geomancy-backed placement policies (the dynamic and
 * static adapters used by the experiment harness).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/policies.hh"
#include "storage/bluesky.hh"

namespace geo {
namespace core {
namespace {

struct Fixture
{
    std::unique_ptr<storage::StorageSystem> system =
        storage::makeBlueskySystem();
    std::unique_ptr<workload::Belle2Workload> workload;
    std::unique_ptr<Geomancy> geomancy;
    std::map<storage::FileId, FileUsage> usage;
    std::vector<storage::DeviceId> ranked;
    Rng rng{17};

    Fixture()
    {
        workload = std::make_unique<workload::Belle2Workload>(*system);
        GeomancyConfig config;
        config.drl.epochs = 8;
        config.minHistory = 200;
        geomancy = std::make_unique<Geomancy>(*system, workload->files(),
                                              config);
        ranked = system->deviceIds();
    }

    PolicyContext
    context()
    {
        return {*system, workload->files(), usage, ranked, rng};
    }

    void
    warmup(int runs)
    {
        for (int i = 0; i < runs; ++i)
            workload->executeRun();
    }
};

TEST(GeomancyDynamicPolicy, RebalanceRunsCycles)
{
    Fixture fx;
    GeomancyDynamicPolicy policy(*fx.geomancy);
    EXPECT_TRUE(policy.isDynamic());
    EXPECT_EQ(policy.name(), "Geomancy dynamic");

    // Without history the cycle skips and moves nothing.
    PolicyContext ctx = fx.context();
    EXPECT_EQ(policy.rebalance(ctx), 0u);
    EXPECT_TRUE(policy.lastReport().skipped);

    fx.warmup(4);
    PolicyContext ctx2 = fx.context();
    policy.rebalance(ctx2);
    EXPECT_FALSE(policy.lastReport().skipped);
    EXPECT_EQ(fx.geomancy->cyclesRun(), 2u);
}

TEST(GeomancyStaticPolicy, PlacesExactlyOnce)
{
    Fixture fx;
    GeomancyStaticPolicy policy(*fx.geomancy);
    EXPECT_FALSE(policy.isDynamic());
    EXPECT_EQ(policy.name(), "Geomancy static");

    fx.warmup(4);
    PolicyContext ctx = fx.context();
    policy.rebalance(ctx);
    auto layout = fx.system->layout();
    uint64_t migrations = fx.system->migrationCount();

    // Second and third calls are no-ops.
    PolicyContext ctx2 = fx.context();
    EXPECT_EQ(policy.rebalance(ctx2), 0u);
    PolicyContext ctx3 = fx.context();
    EXPECT_EQ(policy.rebalance(ctx3), 0u);
    EXPECT_EQ(fx.system->layout(), layout);
    EXPECT_EQ(fx.system->migrationCount(), migrations);
}

TEST(GeomancyStaticPolicy, HandlesColdStartGracefully)
{
    Fixture fx;
    GeomancyStaticPolicy policy(*fx.geomancy);
    // No history at all: predictLayout warns and returns nothing.
    PolicyContext ctx = fx.context();
    EXPECT_EQ(policy.rebalance(ctx), 0u);
}

} // namespace
} // namespace core
} // namespace geo
