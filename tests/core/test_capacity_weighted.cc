/**
 * @file
 * Tests for the capacity-weighted grouping variant of the heuristic
 * policies (the alternative spread the paper mentions in Section VI).
 */

#include <gtest/gtest.h>

#include "core/policies.hh"
#include "storage/system.hh"

namespace geo {
namespace core {
namespace {

/** Two devices: one with 3x the capacity of the other. */
struct Fixture
{
    storage::StorageSystem system;
    std::vector<storage::FileId> files;
    std::map<storage::FileId, FileUsage> usage;
    std::vector<storage::DeviceId> ranked = {0, 1};
    Rng rng{23};

    Fixture()
    {
        storage::DeviceConfig big;
        big.name = "big";
        big.readBandwidth = 2e9;
        big.capacityBytes = 3ULL << 30;
        big.traffic.baseLoad = 0.0;
        storage::DeviceConfig small = big;
        small.name = "small";
        small.readBandwidth = 1e9;
        small.capacityBytes = 1ULL << 30;
        system.addDevice(big);
        system.addDevice(small);
        for (int i = 0; i < 8; ++i) {
            files.push_back(
                system.addFile("f" + std::to_string(i), 1000, 1));
            FileUsage u;
            u.accessCount = 10;
            u.lastAccessIndex = static_cast<uint64_t>(i);
            usage[files.back()] = u;
        }
    }

    PolicyContext
    context()
    {
        return {system, files, usage, ranked, rng};
    }
};

TEST(CapacityWeighted, ProportionalGroups)
{
    Fixture fx;
    LfuPolicy policy(/*capacity_weighted=*/true);
    EXPECT_TRUE(policy.capacityWeighted());
    PolicyContext ctx = fx.context();
    policy.rebalance(ctx);
    // 3:1 capacity ratio over 8 files: 6 on the big mount, 2 small.
    std::vector<size_t> counts = fx.system.filesPerDevice();
    EXPECT_EQ(counts[0], 6u);
    EXPECT_EQ(counts[1], 2u);
}

TEST(CapacityWeighted, EvenSplitByDefault)
{
    Fixture fx;
    LfuPolicy policy;
    EXPECT_FALSE(policy.capacityWeighted());
    PolicyContext ctx = fx.context();
    policy.rebalance(ctx);
    std::vector<size_t> counts = fx.system.filesPerDevice();
    EXPECT_EQ(counts[0], 4u);
    EXPECT_EQ(counts[1], 4u);
}

TEST(CapacityWeighted, WorksForAllHeuristics)
{
    for (int which = 0; which < 3; ++which) {
        Fixture fx;
        std::unique_ptr<GroupedHeuristicPolicy> policy;
        if (which == 0)
            policy = std::make_unique<LruPolicy>(true);
        else if (which == 1)
            policy = std::make_unique<MruPolicy>(true);
        else
            policy = std::make_unique<LfuPolicy>(true);
        PolicyContext ctx = fx.context();
        EXPECT_NO_FATAL_FAILURE(policy->rebalance(ctx)) << which;
        // All files placed, none lost.
        size_t placed = 0;
        for (size_t count : fx.system.filesPerDevice())
            placed += count;
        EXPECT_EQ(placed, fx.files.size());
    }
}

TEST(CapacityWeighted, MruStillReversesDeviceOrder)
{
    Fixture fx;
    MruPolicy policy(true);
    PolicyContext ctx = fx.context();
    policy.rebalance(ctx);
    // MRU reverses: the small (slow) mount is listed first, so with
    // capacities 1:3 in that order the most recent files go there.
    std::vector<size_t> counts = fx.system.filesPerDevice();
    EXPECT_EQ(counts[0] + counts[1], 8u);
    EXPECT_GT(counts[0], 0u);
}

} // namespace
} // namespace core
} // namespace geo
