/**
 * @file
 * Observability-vs-determinism tests: the instrumentation may only
 * *record* what the pipeline does — enabling tracing, resetting the
 * registry or reading snapshots mid-run must leave every simulated
 * outcome bit-identical. Also checks that a real Geomancy run actually
 * populates the pipeline counters end to end.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "storage/bluesky.hh"
#include "util/metrics.hh"
#include "util/trace_event.hh"

namespace geo {
namespace core {
namespace {

ExperimentConfig
shortConfig()
{
    ExperimentConfig config;
    config.warmupRuns = 1;
    config.measuredRuns = 5;
    config.cadence = 2;
    config.seed = 11;
    return config;
}

ExperimentResult
runGeomancy()
{
    auto system = storage::makeBlueskySystem(7);
    workload::Belle2Workload workload(*system);
    GeomancyConfig config;
    config.drl.epochs = 6;
    config.minHistory = 200;
    Geomancy geomancy(*system, workload.files(), config);
    GeomancyDynamicPolicy policy(geomancy);
    ExperimentRunner runner(*system, workload, policy, shortConfig());
    return runner.run();
}

TEST(Observability, TracingDoesNotPerturbTheExperiment)
{
    util::TraceCollector &collector = util::TraceCollector::global();
    collector.disable();
    collector.clear();
    ExperimentResult plain = runGeomancy();

    util::MetricRegistry::global().reset();
    collector.enable();
    ExperimentResult traced = runGeomancy();
    collector.disable();

    ASSERT_EQ(plain.totalAccesses, traced.totalAccesses);
    for (size_t i = 0; i < plain.throughputSeries.size(); ++i)
        ASSERT_DOUBLE_EQ(plain.throughputSeries[i],
                         traced.throughputSeries[i])
            << "tracing changed the simulation at access " << i;
    EXPECT_EQ(plain.filesMoved, traced.filesMoved);
    EXPECT_EQ(plain.bytesMoved, traced.bytesMoved);

#if GEO_TRACE
    // The traced run must have produced the decision-cycle spans.
    std::string json = collector.toJson();
    EXPECT_NE(json.find("\"name\":\"cycle\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"monitor\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"predict\""), std::string::npos);
#else
    // Compiled out: the collector must have stayed empty.
    EXPECT_EQ(collector.eventCount(), 0u);
#endif
    collector.clear();
}

TEST(Observability, PipelineCountersPopulateDuringARun)
{
    util::MetricRegistry &registry = util::MetricRegistry::global();
    registry.reset();
    ExperimentResult result = runGeomancy();
    EXPECT_GT(result.totalAccesses, 0u);

    EXPECT_GT(registry.counterValue("monitor.records_observed"), 0u);
    EXPECT_GT(registry.counterValue("monitor.batches_sent"), 0u);
    EXPECT_GT(registry.counterValue("geomancy.cycles"), 0u);
    EXPECT_GT(registry.counterValue("drl.train_steps"), 0u);
    // Short run, but moves were applied (the fig5a shape depends on
    // it), so the control-agent accounting must line up with the
    // experiment result.
    EXPECT_EQ(registry.counterValue("control.bytes_moved"),
              result.bytesMoved);
    EXPECT_EQ(registry.counterValue("control.moves_applied"),
              static_cast<uint64_t>(result.filesMoved));

    // Snapshots export cleanly mid-process.
    EXPECT_NE(registry.toJson().find("geo-metrics-1"), std::string::npos);
    EXPECT_FALSE(registry.toPrometheus().empty());
}

TEST(Observability, RegistryResetBetweenRunsIsolatesCounts)
{
    util::MetricRegistry &registry = util::MetricRegistry::global();
    registry.reset();
    runGeomancy();
    uint64_t first = registry.counterValue("geomancy.cycles");
    ASSERT_GT(first, 0u);
    registry.reset();
    runGeomancy();
    EXPECT_EQ(registry.counterValue("geomancy.cycles"), first);
}

} // namespace
} // namespace core
} // namespace geo
