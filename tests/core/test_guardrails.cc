/**
 * @file
 * Tests for the guardrail subsystem: every quarantine reject reason,
 * the hold-layout floor, the safe-mode trip/probe/backoff state
 * machine, checkpoint round-trips, and the recording-only guarantee —
 * a clean run with guardrails enabled is byte-identical to one with
 * them disabled.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "core/experiment.hh"
#include "core/guardrails.hh"
#include "storage/bluesky.hh"
#include "util/state_io.hh"

namespace geo {
namespace core {
namespace {

PerfRecord
cleanRecord(double now = 100.0)
{
    PerfRecord rec;
    rec.file = 42;
    rec.device = 1;
    rec.rb = 1 << 20;
    rec.wb = 0;
    rec.ots = static_cast<int64_t>(now) - 1;
    rec.otms = 250;
    rec.cts = static_cast<int64_t>(now);
    rec.ctms = 500;
    rec.throughput = 5e8;
    return rec;
}

struct Fixture
{
    SimClock clock;
    GuardrailsConfig config;

    Guardrails
    make()
    {
        return Guardrails(config, clock);
    }
};

TEST(GuardrailsAdmit, CleanRecordPasses)
{
    Fixture fx;
    fx.clock.advance(100.0);
    Guardrails guard = fx.make();
    EXPECT_TRUE(guard.admit(cleanRecord(), nullptr));
    EXPECT_EQ(guard.admitted(), 1u);
    EXPECT_EQ(guard.quarantined(), 0u);
    EXPECT_EQ(guard.cycleAdmitted(), 1u);
}

TEST(GuardrailsAdmit, RejectsNonFiniteThroughput)
{
    Fixture fx;
    fx.clock.advance(100.0);
    Guardrails guard = fx.make();
    PerfRecord rec = cleanRecord();
    rec.throughput = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(guard.admit(rec, nullptr));
    rec.throughput = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(guard.admit(rec, nullptr));
    EXPECT_EQ(guard.quarantinedFor(QuarantineReason::NonFinite), 2u);
    EXPECT_EQ(guard.quarantine().size(), 2u);
}

TEST(GuardrailsAdmit, RejectsNegativeThroughput)
{
    Fixture fx;
    fx.clock.advance(100.0);
    Guardrails guard = fx.make();
    PerfRecord rec = cleanRecord();
    rec.throughput = -1.0;
    EXPECT_FALSE(guard.admit(rec, nullptr));
    EXPECT_EQ(guard.quarantinedFor(QuarantineReason::NegativeThroughput),
              1u);
}

TEST(GuardrailsAdmit, RejectsCloseBeforeOpen)
{
    Fixture fx;
    fx.clock.advance(100.0);
    Guardrails guard = fx.make();
    PerfRecord rec = cleanRecord();
    rec.cts = rec.ots - 10;
    EXPECT_FALSE(guard.admit(rec, nullptr));
    EXPECT_EQ(guard.quarantinedFor(QuarantineReason::BadDuration), 1u);
}

TEST(GuardrailsAdmit, RejectsOutOfRangeFields)
{
    Fixture fx;
    fx.clock.advance(100.0);
    Guardrails guard = fx.make();
    PerfRecord rec = cleanRecord();
    rec.throughput = 1e13; // above maxThroughput
    EXPECT_FALSE(guard.admit(rec, nullptr));
    rec = cleanRecord();
    rec.rb = 1ULL << 60; // above maxAccessBytes
    EXPECT_FALSE(guard.admit(rec, nullptr));
    rec = cleanRecord();
    rec.wb = 1ULL << 60;
    EXPECT_FALSE(guard.admit(rec, nullptr));
    EXPECT_EQ(guard.quarantinedFor(QuarantineReason::OutOfRange), 3u);
}

TEST(GuardrailsAdmit, RejectsFarFutureTimestamps)
{
    Fixture fx;
    fx.clock.advance(100.0);
    Guardrails guard = fx.make();
    PerfRecord rec = cleanRecord();
    rec.cts = static_cast<int64_t>(100.0 + fx.config.maxFutureSkewSeconds) +
              10;
    EXPECT_FALSE(guard.admit(rec, nullptr));
    EXPECT_EQ(guard.quarantinedFor(QuarantineReason::Future), 1u);
    // Mild future skew (concurrent accesses) is legitimate.
    rec = cleanRecord();
    rec.cts = 150;
    EXPECT_TRUE(guard.admit(rec, nullptr));
}

TEST(GuardrailsAdmit, RejectsStaleTimestamps)
{
    Fixture fx;
    fx.clock.advance(2.0 * 86400.0 + 100.0);
    Guardrails guard = fx.make();
    PerfRecord rec = cleanRecord(100.0); // closed ~2 days before now
    EXPECT_FALSE(guard.admit(rec, nullptr));
    EXPECT_EQ(guard.quarantinedFor(QuarantineReason::Stale), 1u);
}

TEST(GuardrailsAdmit, RejectsExactDuplicateOfPreviousPending)
{
    Fixture fx;
    fx.clock.advance(100.0);
    Guardrails guard = fx.make();
    PerfRecord first = cleanRecord();
    EXPECT_TRUE(guard.admit(first, nullptr));
    // Same record again, anchored on the pending predecessor.
    EXPECT_FALSE(guard.admit(first, &first));
    EXPECT_EQ(guard.quarantinedFor(QuarantineReason::Duplicate), 1u);
    // Any field difference defeats the duplicate check.
    PerfRecord second = first;
    second.ctms += 1;
    EXPECT_TRUE(guard.admit(second, &first));
    // No predecessor (batch boundary) admits even an identical record.
    EXPECT_TRUE(guard.admit(first, nullptr));
}

TEST(GuardrailsAdmit, DisabledAdmitsEverything)
{
    Fixture fx;
    fx.config.enabled = false;
    fx.clock.advance(100.0);
    Guardrails guard = fx.make();
    PerfRecord rec = cleanRecord();
    rec.throughput = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(guard.admit(rec, nullptr));
    EXPECT_EQ(guard.quarantined(), 0u);
}

TEST(GuardrailsAdmit, QuarantineRingIsBounded)
{
    Fixture fx;
    fx.config.quarantineCapacity = 4;
    fx.clock.advance(100.0);
    Guardrails guard = fx.make();
    PerfRecord rec = cleanRecord();
    rec.throughput = -1.0;
    for (int i = 0; i < 10; ++i) {
        rec.rb = static_cast<uint64_t>(i);
        guard.admit(rec, nullptr);
    }
    EXPECT_EQ(guard.quarantine().size(), 4u);
    EXPECT_EQ(guard.quarantined(), 10u);
    // Oldest entries were evicted: the ring holds the last four.
    EXPECT_EQ(guard.quarantine().front().record.rb, 6u);
}

TEST(GuardrailsCycle, HoldsLayoutOnQuarantineStarvation)
{
    Fixture fx;
    fx.config.minAdmittedPerCycle = 4;
    fx.clock.advance(100.0);
    Guardrails guard = fx.make();
    guard.beginCycle();
    EXPECT_FALSE(guard.holdLayout()); // nothing quarantined: no hold
    PerfRecord bad = cleanRecord();
    bad.throughput = -1.0;
    guard.admit(bad, nullptr);
    EXPECT_TRUE(guard.holdLayout()); // 0 admitted < 4, 1 quarantined
    PerfRecord good = cleanRecord();
    for (int i = 0; i < 4; ++i) {
        good.ctms = 100 + i;
        guard.admit(good, nullptr);
    }
    EXPECT_FALSE(guard.holdLayout()); // enough clean telemetry survived
}

TEST(GuardrailsCycle, FloodNeedsVolumeAndMajority)
{
    Fixture fx;
    fx.config.floodMinQuarantined = 4;
    fx.clock.advance(100.0);
    Guardrails guard = fx.make();
    guard.beginCycle();
    PerfRecord bad = cleanRecord();
    bad.throughput = -1.0;
    for (int i = 0; i < 3; ++i)
        guard.admit(bad, nullptr);
    EXPECT_FALSE(guard.quarantineFlood()); // below the volume floor
    guard.admit(bad, nullptr);
    EXPECT_TRUE(guard.quarantineFlood()); // 4 quarantined > 0 admitted
    PerfRecord good = cleanRecord();
    for (int i = 0; i < 5; ++i) {
        good.ctms = 100 + i;
        guard.admit(good, nullptr);
    }
    EXPECT_FALSE(guard.quarantineFlood()); // admitted majority again
}

CycleEvidence
evidence(uint64_t cycle, bool trained = true)
{
    CycleEvidence ev;
    ev.cycle = cycle;
    ev.trained = trained;
    return ev;
}

TEST(GuardrailsSafeMode, TripsOnConsecutiveOverruns)
{
    Fixture fx;
    fx.clock.advance(1.0);
    Guardrails guard = fx.make();
    uint64_t cycle = 1;
    for (size_t i = 0; i + 1 < fx.config.overrunTripThreshold; ++i) {
        CycleEvidence ev = evidence(cycle++);
        ev.overrun = true;
        EXPECT_EQ(guard.observeCycle(ev), GuardrailTransition::None);
    }
    // A clean cycle resets the streak.
    EXPECT_EQ(guard.observeCycle(evidence(cycle++)),
              GuardrailTransition::None);
    for (size_t i = 0; i + 1 < fx.config.overrunTripThreshold; ++i) {
        CycleEvidence ev = evidence(cycle++);
        ev.overrun = true;
        EXPECT_EQ(guard.observeCycle(ev), GuardrailTransition::None);
        EXPECT_FALSE(guard.safeMode());
    }
    CycleEvidence ev = evidence(cycle);
    ev.overrun = true;
    EXPECT_EQ(guard.observeCycle(ev), GuardrailTransition::Entered);
    EXPECT_TRUE(guard.safeMode());
    EXPECT_EQ(guard.safeModeEntries(), 1u);
    EXPECT_EQ(guard.nextProbeCycle(), cycle + fx.config.probeBackoffBase);
}

TEST(GuardrailsSafeMode, TripsOnFloodAndOnDivergence)
{
    Fixture fx;
    fx.clock.advance(1.0);
    {
        Guardrails guard = fx.make();
        for (uint64_t c = 1;; ++c) {
            CycleEvidence ev = evidence(c);
            ev.flood = true;
            GuardrailTransition t = guard.observeCycle(ev);
            if (c < fx.config.floodTripThreshold) {
                EXPECT_EQ(t, GuardrailTransition::None);
            } else {
                EXPECT_EQ(t, GuardrailTransition::Entered);
                break;
            }
        }
        EXPECT_TRUE(guard.safeMode());
    }
    {
        Guardrails guard = fx.make();
        for (uint64_t c = 1;; ++c) {
            CycleEvidence ev = evidence(c, /*trained=*/false);
            ev.diverged = true;
            GuardrailTransition t = guard.observeCycle(ev);
            if (c < fx.config.divergenceTripThreshold) {
                EXPECT_EQ(t, GuardrailTransition::None);
            } else {
                EXPECT_EQ(t, GuardrailTransition::Entered);
                break;
            }
        }
        EXPECT_TRUE(guard.safeMode());
    }
}

TEST(GuardrailsSafeMode, ProbeScheduleBacksOffExponentially)
{
    Fixture fx;
    fx.clock.advance(1.0);
    Guardrails guard = fx.make();
    CycleEvidence trip = evidence(10);
    trip.flood = true;
    guard.observeCycle(trip);
    trip.cycle = 11;
    ASSERT_EQ(guard.observeCycle(trip), GuardrailTransition::Entered);
    ASSERT_TRUE(guard.safeMode());
    uint64_t probe_at = guard.nextProbeCycle();
    EXPECT_EQ(probe_at, 11u + fx.config.probeBackoffBase);

    // Non-probe safe-mode cycles change nothing.
    EXPECT_FALSE(guard.probeDue(probe_at - 1));
    EXPECT_EQ(guard.observeCycle(evidence(probe_at - 1, false)),
              GuardrailTransition::None);
    EXPECT_EQ(guard.nextProbeCycle(), probe_at);

    // Failed probes double the wait, up to the cap.
    uint64_t expected_wait = fx.config.probeBackoffBase;
    for (int i = 0; i < 6; ++i) {
        uint64_t due = guard.nextProbeCycle();
        EXPECT_TRUE(guard.probeDue(due));
        CycleEvidence probe = evidence(due, /*trained=*/false);
        probe.probe = true;
        EXPECT_EQ(guard.observeCycle(probe), GuardrailTransition::None);
        expected_wait =
            std::min(expected_wait * fx.config.probeBackoffMultiplier,
                     fx.config.probeBackoffMax);
        EXPECT_EQ(guard.nextProbeCycle(), due + expected_wait);
        EXPECT_EQ(guard.backoffLevel(), static_cast<uint64_t>(i + 1));
    }

    // A healthy probe exits and resets everything.
    uint64_t due = guard.nextProbeCycle();
    CycleEvidence healthy = evidence(due);
    healthy.probe = true;
    EXPECT_EQ(guard.observeCycle(healthy), GuardrailTransition::Exited);
    EXPECT_FALSE(guard.safeMode());
    EXPECT_EQ(guard.safeModeExits(), 1u);
    EXPECT_EQ(guard.backoffLevel(), 0u);
}

TEST(GuardrailsSafeMode, UnhealthyProbeReasonsKeepItSafe)
{
    Fixture fx;
    fx.clock.advance(1.0);
    Guardrails guard = fx.make();
    CycleEvidence trip = evidence(1);
    trip.flood = true;
    guard.observeCycle(trip);
    trip.cycle = 2;
    guard.observeCycle(trip);
    ASSERT_TRUE(guard.safeMode());

    const char *cases[] = {"diverged", "flood", "overrun", "held",
                           "untrained"};
    for (const char *why : cases) {
        uint64_t due = guard.nextProbeCycle();
        CycleEvidence probe = evidence(due);
        probe.probe = true;
        if (std::string(why) == "diverged")
            probe.diverged = true;
        else if (std::string(why) == "flood")
            probe.flood = true;
        else if (std::string(why) == "overrun")
            probe.overrun = true;
        else if (std::string(why) == "held")
            probe.held = true;
        else
            probe.trained = false;
        EXPECT_EQ(guard.observeCycle(probe), GuardrailTransition::None)
            << why;
        EXPECT_TRUE(guard.safeMode()) << why;
    }
}

TEST(GuardrailsState, RoundTripsThroughStateIo)
{
    Fixture fx;
    fx.clock.advance(50.0);
    Guardrails guard = fx.make();

    // Build non-trivial state: counters, a trip, a failed probe.
    PerfRecord bad = cleanRecord(50.0);
    bad.throughput = -2.0;
    guard.admit(bad, nullptr);
    PerfRecord good = cleanRecord(50.0);
    guard.admit(good, nullptr);
    CycleEvidence trip = evidence(5);
    trip.flood = true;
    guard.observeCycle(trip);
    trip.cycle = 6;
    guard.observeCycle(trip);
    uint64_t due = guard.nextProbeCycle();
    CycleEvidence probe = evidence(due, /*trained=*/false);
    probe.probe = true;
    guard.observeCycle(probe);
    guard.watchdog().setOverruns(3);

    std::ostringstream os;
    util::StateWriter w(os);
    guard.saveState(w);

    Guardrails restored = fx.make();
    std::istringstream is(os.str());
    util::StateReader r(is);
    restored.loadState(r);
    ASSERT_TRUE(r.ok()) << r.error();

    EXPECT_EQ(restored.safeMode(), guard.safeMode());
    EXPECT_EQ(restored.backoffLevel(), guard.backoffLevel());
    EXPECT_EQ(restored.nextProbeCycle(), guard.nextProbeCycle());
    EXPECT_EQ(restored.safeModeEntries(), guard.safeModeEntries());
    EXPECT_EQ(restored.safeModeExits(), guard.safeModeExits());
    EXPECT_EQ(restored.admitted(), guard.admitted());
    EXPECT_EQ(restored.quarantined(), guard.quarantined());
    for (size_t i = 0; i < kQuarantineReasonCount; ++i) {
        auto reason = static_cast<QuarantineReason>(i);
        EXPECT_EQ(restored.quarantinedFor(reason),
                  guard.quarantinedFor(reason));
    }
    EXPECT_EQ(restored.watchdog().overruns(), 3u);

    // The restored machine continues the probe schedule seamlessly.
    uint64_t next = restored.nextProbeCycle();
    CycleEvidence healthy = evidence(next);
    healthy.probe = true;
    EXPECT_EQ(restored.observeCycle(healthy), GuardrailTransition::Exited);
}

TEST(GuardrailsState, RejectsTruncatedState)
{
    Fixture fx;
    Guardrails guard = fx.make();
    std::ostringstream os;
    util::StateWriter w(os);
    guard.saveState(w);
    std::string text = os.str();
    std::istringstream is(text.substr(0, text.size() / 2));
    util::StateReader r(is);
    Guardrails restored = fx.make();
    restored.loadState(r);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(restored.safeMode());
}

// The recording-only guarantee (the fig5a standard): a clean run with
// guardrails enabled produces a decision trajectory byte-identical to
// one with guardrails disabled — validation admits every legitimate
// record, consumes no randomness and trips nothing.
TEST(GuardrailsIdentity, CleanRunMatchesGuardrailFreeRun)
{
    auto run = [](bool enabled) {
        auto system = storage::makeBlueskySystem(7);
        workload::Belle2Workload workload(*system);
        GeomancyConfig config;
        config.drl.epochs = 6;
        config.minHistory = 200;
        config.guardrails.enabled = enabled;
        Geomancy geomancy(*system, workload.files(), config);
        GeomancyDynamicPolicy policy(geomancy);
        ExperimentConfig exp;
        exp.warmupRuns = 1;
        exp.measuredRuns = 5;
        exp.cadence = 2;
        exp.seed = 11;
        ExperimentRunner runner(*system, workload, policy, exp);
        return runner.run();
    };
    ExperimentResult with = run(true);
    ExperimentResult without = run(false);
    ASSERT_EQ(with.totalAccesses, without.totalAccesses);
    ASSERT_EQ(with.throughputSeries.size(),
              without.throughputSeries.size());
    for (size_t i = 0; i < with.throughputSeries.size(); ++i)
        ASSERT_DOUBLE_EQ(with.throughputSeries[i],
                         without.throughputSeries[i])
            << "diverged at access " << i;
    EXPECT_EQ(with.filesMoved, without.filesMoved);
    EXPECT_EQ(with.bytesMoved, without.bytesMoved);
}

} // namespace
} // namespace core
} // namespace geo
