/**
 * @file
 * Tests for the checkpoint subsystem: file format round-trip,
 * retention, corruption rejection with fallback, and an in-process
 * save/resume of the full pipeline that must reproduce an
 * uninterrupted run bit-for-bit.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "core/experiment.hh"
#include "core/geomancy.hh"
#include "core/policies.hh"
#include "storage/bluesky.hh"
#include "storage/fault_injector.hh"
#include "util/crc32.hh"
#include "util/fs_atomic.hh"
#include "util/metrics.hh"
#include "util/state_io.hh"

namespace geo {
namespace core {
namespace {

/** Unique scratch directory, removed on destruction. */
struct TempDir
{
    std::string path;

    explicit TempDir(const char *stem)
    {
        path = (std::filesystem::temp_directory_path() /
                (std::string("geo_test_") + stem))
                   .string();
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(Checkpoint, WriteReadRoundTrip)
{
    TempDir dir("ckpt_rt");
    CheckpointManager manager({dir.path});
    std::string payload = "geo.cycles 3\ngeo.rng 1 2 3 4\n";
    ASSERT_TRUE(manager.write(3, payload));

    CheckpointHeader header;
    std::string out;
    ASSERT_TRUE(CheckpointManager::read(manager.pathFor(3), header, out));
    EXPECT_EQ(header.cycle, 3u);
    EXPECT_EQ(header.bytes, payload.size());
    EXPECT_EQ(header.crc, util::crc32(payload));
    EXPECT_EQ(out, payload);
}

TEST(Checkpoint, RetentionPrunesOldest)
{
    TempDir dir("ckpt_keep");
    CheckpointManagerConfig config;
    config.dir = dir.path;
    config.keep = 2;
    CheckpointManager manager(config);
    for (uint64_t cycle : {1, 2, 3, 4})
        ASSERT_TRUE(manager.write(cycle, "payload"));
    std::vector<uint64_t> cycles = manager.availableCycles();
    ASSERT_EQ(cycles.size(), 2u);
    EXPECT_EQ(cycles[0], 3u);
    EXPECT_EQ(cycles[1], 4u);
    EXPECT_FALSE(std::filesystem::exists(manager.pathFor(1)));
}

TEST(Checkpoint, TamperedPayloadRejected)
{
    TempDir dir("ckpt_crc");
    CheckpointManager manager({dir.path});
    ASSERT_TRUE(manager.write(1, "the payload to protect"));

    std::string blob;
    ASSERT_TRUE(util::readFileAll(manager.pathFor(1), blob));
    blob[blob.size() - 3] ^= 0x01; // one bit, inside the payload
    {
        std::ofstream os(manager.pathFor(1),
                         std::ios::binary | std::ios::trunc);
        os << blob;
    }

    auto &rejected =
        util::MetricRegistry::global().counter("checkpoint.crc_rejected");
    uint64_t before = rejected.value();
    CheckpointHeader header;
    std::string payload;
    EXPECT_FALSE(CheckpointManager::read(manager.pathFor(1), header, payload));
    EXPECT_GT(rejected.value(), before);
}

TEST(Checkpoint, TruncatedFileRejected)
{
    TempDir dir("ckpt_trunc");
    CheckpointManager manager({dir.path});
    ASSERT_TRUE(manager.write(1, std::string(100, 'x')));

    std::string blob;
    ASSERT_TRUE(util::readFileAll(manager.pathFor(1), blob));
    {
        std::ofstream os(manager.pathFor(1),
                         std::ios::binary | std::ios::trunc);
        os << blob.substr(0, blob.size() - 40);
    }
    CheckpointHeader header;
    std::string payload;
    EXPECT_FALSE(CheckpointManager::read(manager.pathFor(1), header, payload));
}

TEST(Checkpoint, BadMagicRejected)
{
    TempDir dir("ckpt_magic");
    std::string path = dir.path + "/ckpt-1.geo";
    ASSERT_TRUE(util::writeFileAtomic(path, "not-a-checkpoint\njunk\n"));
    CheckpointHeader header;
    std::string payload;
    EXPECT_FALSE(CheckpointManager::read(path, header, payload));
}

TEST(Checkpoint, LoadLatestFallsBackPastCorrupt)
{
    TempDir dir("ckpt_fallback");
    CheckpointManager manager({dir.path});
    ASSERT_TRUE(manager.write(1, "older snapshot"));
    ASSERT_TRUE(manager.write(2, "newer snapshot"));

    std::string blob;
    ASSERT_TRUE(util::readFileAll(manager.pathFor(2), blob));
    blob[blob.size() / 2] ^= 0x40;
    {
        std::ofstream os(manager.pathFor(2),
                         std::ios::binary | std::ios::trunc);
        os << blob;
    }

    CheckpointHeader header;
    std::string payload, path;
    ASSERT_TRUE(manager.loadLatest(header, payload, &path));
    EXPECT_EQ(header.cycle, 1u);
    EXPECT_EQ(payload, "older snapshot");
    EXPECT_EQ(path, manager.pathFor(1));
}

TEST(Checkpoint, LoadLatestFailsWhenEverythingCorrupt)
{
    TempDir dir("ckpt_allbad");
    CheckpointManager manager({dir.path});
    ASSERT_TRUE(manager.write(1, "snapshot"));
    std::string blob;
    ASSERT_TRUE(util::readFileAll(manager.pathFor(1), blob));
    blob[blob.size() - 1] ^= 0xff;
    {
        std::ofstream os(manager.pathFor(1),
                         std::ios::binary | std::ios::trunc);
        os << blob;
    }
    CheckpointHeader header;
    std::string payload;
    EXPECT_FALSE(manager.loadLatest(header, payload));
}

TEST(Checkpoint, ClearRemovesEverySnapshot)
{
    TempDir dir("ckpt_clear");
    CheckpointManager manager({dir.path});
    ASSERT_TRUE(manager.write(1, "a"));
    ASSERT_TRUE(manager.write(2, "b"));
    manager.clear();
    EXPECT_TRUE(manager.availableCycles().empty());
}

// ---------------------------------------------------------------------
// Full-pipeline save/resume, in-process: run the fig5a-style dynamic
// experiment with checkpointing, abandon it two runs past a snapshot
// (mimicking a crash whose post-cut work must be discarded), resume
// from the snapshot and compare against an uninterrupted run.

struct PipelineOutput
{
    bool completed = false;
    std::vector<double> series;
    double avg = 0.0;
    double simTime = 0.0;
};

/**
 * One pipeline timeline. `abandonAfter` > 0 stops the experiment two
 * measured runs past that snapshot (the extra runs' ReplayDB rows are
 * exactly what rewindTo must discard on resume).
 */
PipelineOutput
runPipeline(const std::string &dir, size_t abandonAfter, bool resume)
{
    PipelineOutput out;
    std::error_code ec;
    CheckpointManager manager({dir});
    std::string db_path = dir + "/replay.db";
    if (!resume) {
        manager.clear();
        for (const char *suffix : {"", "-journal", "-wal", "-shm"})
            std::filesystem::remove(db_path + suffix, ec);
    }

    auto system = storage::makeBlueskySystem(7);
    workload::Belle2Workload workload(*system);
    storage::FaultInjector injector(*system, {});
    system->attachFaultInjector(&injector);

    GeomancyConfig gconfig;
    gconfig.drl.epochs = 2;
    Geomancy geomancy(*system, workload.files(), gconfig, db_path);
    GeomancyDynamicPolicy policy(geomancy);

    ExperimentConfig config;
    config.warmupRuns = 2;
    config.measuredRuns = 8;
    config.cadence = 2;
    config.seed = 99;
    ExperimentRunner runner(*system, workload, policy, config);

    if (resume) {
        CheckpointHeader header;
        std::string payload;
        if (!manager.loadLatest(header, payload)) {
            ADD_FAILURE() << "no valid snapshot in " << dir;
            return out;
        }
        std::istringstream is(payload);
        util::StateReader r(is);
        geomancy.loadState(r);
        injector.loadState(r);
        workload.loadState(r);
        runner.loadState(r);
        if (!r.ok()) {
            ADD_FAILURE() << "snapshot rejected: " << r.error();
            return out;
        }
        geomancy.controlAgent().restorePending();
    }

    runner.setCheckpointHook([&](size_t done) {
        // Serialize every run (saveState flushes the agents, and flush
        // cadence must match across timelines) but stop committing
        // snapshots past the abandon point so the resume has work to
        // recover.
        std::ostringstream os;
        util::StateWriter w(os);
        geomancy.saveState(w);
        injector.saveState(w);
        workload.saveState(w);
        runner.saveState(w);
        if (!abandonAfter || done <= abandonAfter)
            manager.write(done, os.str());
    });

    while (runner.step()) {
        if (abandonAfter && runner.measuredRunsDone() >= abandonAfter + 2)
            return out; // "crash": leave post-snapshot DB rows behind
    }
    ExperimentResult result = runner.finish();
    out.completed = true;
    out.series = result.throughputSeries;
    out.avg = result.averageThroughput;
    out.simTime = system->clock().now();
    return out;
}

TEST(CheckpointPipeline, ResumeReproducesUninterruptedRunExactly)
{
    TempDir ref_dir("ckpt_pipe_ref");
    TempDir crash_dir("ckpt_pipe_crash");

    PipelineOutput ref = runPipeline(ref_dir.path, 0, false);
    ASSERT_TRUE(ref.completed);
    ASSERT_FALSE(ref.series.empty());

    PipelineOutput interrupted = runPipeline(crash_dir.path, 3, false);
    EXPECT_FALSE(interrupted.completed);

    PipelineOutput resumed = runPipeline(crash_dir.path, 0, true);
    ASSERT_TRUE(resumed.completed);

    ASSERT_EQ(resumed.series.size(), ref.series.size());
    for (size_t i = 0; i < ref.series.size(); ++i)
        ASSERT_EQ(resumed.series[i], ref.series[i]) << "sample " << i;
    EXPECT_EQ(resumed.avg, ref.avg);
    EXPECT_EQ(resumed.simTime, ref.simTime);
}

} // namespace
} // namespace core
} // namespace geo
