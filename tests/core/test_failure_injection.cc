/**
 * @file
 * Failure-injection tests: Geomancy and the policies must degrade
 * gracefully when the target system turns hostile mid-run (mounts
 * going read-only, filling up, or disappearing from the candidate
 * set) — the situations the Action Checker exists for (Section V-H).
 */

#include <gtest/gtest.h>

#include "core/geomancy.hh"
#include "core/policies.hh"
#include "storage/bluesky.hh"
#include "workload/belle2.hh"

namespace geo {
namespace core {
namespace {

GeomancyConfig
fastConfig()
{
    GeomancyConfig config;
    config.drl.epochs = 10;
    config.minHistory = 200;
    return config;
}

TEST(FailureInjection, ReadOnlyMountsMidRun)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    Geomancy geomancy(*system, workload.files(), fastConfig());

    for (int run = 0; run < 3; ++run)
        workload.executeRun();
    geomancy.runCycle();

    // Every mount except file0 goes read-only.
    for (storage::DeviceId id : system->deviceIds())
        if (id != 0)
            system->device(id).setWritable(false);

    // Cycles keep running; any applied move can only target file0.
    for (int cycle = 0; cycle < 4; ++cycle) {
        workload.executeRun();
        CycleReport report = geomancy.runCycle();
        (void)report;
    }
    for (const MovementRecord &move :
         geomancy.replayDb().recentMovements(100)) {
        if (move.timestamp > 0.0 && move.toDevice != 0) {
            // Moves to other devices must predate the lockdown; the
            // simplest check is that post-lockdown locations are legal.
        }
    }
    for (storage::FileId file : workload.files()) {
        storage::DeviceId loc = system->location(file);
        // Files can only sit where they were or on the writable mount.
        EXPECT_LT(loc, system->deviceCount());
    }
}

TEST(FailureInjection, AllMountsReadOnlyStillRuns)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    Geomancy geomancy(*system, workload.files(), fastConfig());
    for (int run = 0; run < 3; ++run)
        workload.executeRun();
    for (storage::DeviceId id : system->deviceIds())
        system->device(id).setWritable(false);
    auto layout_before = system->layout();
    for (int cycle = 0; cycle < 3; ++cycle) {
        workload.executeRun();
        CycleReport report = geomancy.runCycle();
        EXPECT_EQ(report.moves.applied, 0u);
    }
    EXPECT_EQ(system->layout(), layout_before);
}

TEST(FailureInjection, TinyDeviceNeverOverfilled)
{
    // A nearly full mount must never accept files beyond capacity.
    storage::StorageSystem system;
    storage::DeviceConfig big;
    big.name = "big";
    big.capacityBytes = 1ULL << 40;
    big.traffic.baseLoad = 0.0;
    storage::DeviceConfig tiny = big;
    tiny.name = "tiny";
    tiny.capacityBytes = 3ULL << 20; // fits ~2 small files
    system.addDevice(big);
    system.addDevice(tiny);

    workload::Belle2Config config;
    config.fileCount = 8;
    config.minFileBytes = 1 << 20;
    config.maxFileBytes = 1 << 20;
    workload::Belle2Workload workload(system, config, {0});

    Rng rng(5);
    ActionChecker checker(system);
    size_t accepted = 0;
    for (storage::FileId file : workload.files()) {
        auto move = checker.randomMove(file, rng);
        if (move && system.moveFile(file, move->to).moved)
            ++accepted;
    }
    EXPECT_LE(system.device(1).usedBytes(),
              system.device(1).capacityBytes());
    EXPECT_LE(accepted, 3u);
}

TEST(FailureInjection, UnaccessedFilesAreSkipped)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    // One extra file Geomancy manages but the workload never touches.
    storage::FileId ghost = system->addFile("ghost", 1 << 20, 0);
    std::vector<storage::FileId> managed = workload.files();
    managed.push_back(ghost);
    GeomancyConfig config = fastConfig();
    config.explorationRate = 0.0; // only model-driven moves
    Geomancy geomancy(*system, managed, config);
    for (int run = 0; run < 4; ++run)
        workload.executeRun();
    for (int cycle = 0; cycle < 3; ++cycle) {
        geomancy.runCycle();
        workload.executeRun();
    }
    // The ghost has no access history, so no model-driven move can
    // have touched it.
    EXPECT_EQ(system->location(ghost), 0u);
}

TEST(FailureInjection, EmptyTrainingWindowSkipsCycle)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    GeomancyConfig config = fastConfig();
    config.minHistory = 1; // act immediately...
    Geomancy geomancy(*system, workload.files(), config);
    // ...but the ReplayDB is empty: the cycle must skip, not crash.
    CycleReport report = geomancy.runCycle();
    EXPECT_TRUE(report.skipped);
}

TEST(FailureInjection, PolicyOnFullDevices)
{
    // Heuristic policies skip moves the system rejects.
    storage::StorageSystem system;
    for (int i = 0; i < 2; ++i) {
        storage::DeviceConfig d;
        d.name = "d" + std::to_string(i);
        d.capacityBytes = 40ULL << 20;
        d.traffic.baseLoad = 0.0;
        system.addDevice(d);
    }
    workload::Belle2Config wconfig;
    wconfig.fileCount = 4;
    wconfig.minFileBytes = 10 << 20;
    wconfig.maxFileBytes = 10 << 20;
    workload::Belle2Workload workload(system, wconfig);

    std::map<storage::FileId, FileUsage> usage;
    std::vector<storage::DeviceId> ranked = {0, 1};
    Rng rng(3);
    LruPolicy policy;
    PolicyContext context{system, workload.files(), usage, ranked, rng};
    EXPECT_NO_FATAL_FAILURE(policy.rebalance(context));
    EXPECT_LE(system.device(0).usedBytes(),
              system.device(0).capacityBytes());
    EXPECT_LE(system.device(1).usedBytes(),
              system.device(1).capacityBytes());
}

} // namespace
} // namespace core
} // namespace geo
