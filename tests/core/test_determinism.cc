/**
 * @file
 * Determinism tests: with fixed seeds, whole experiments replay
 * bit-identically — the property every debugging and comparison
 * workflow in this repository rests on.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "storage/bluesky.hh"

namespace geo {
namespace core {
namespace {

ExperimentConfig
shortConfig()
{
    ExperimentConfig config;
    config.warmupRuns = 1;
    config.measuredRuns = 5;
    config.cadence = 2;
    config.seed = 11;
    return config;
}

ExperimentResult
runOnce(const std::string &policy_name)
{
    auto system = storage::makeBlueskySystem(7);
    workload::Belle2Workload workload(*system);
    std::unique_ptr<Geomancy> geomancy;
    std::unique_ptr<PlacementPolicy> policy;
    if (policy_name == "geomancy") {
        GeomancyConfig config;
        config.drl.epochs = 6;
        config.minHistory = 200;
        geomancy = std::make_unique<Geomancy>(*system, workload.files(),
                                              config);
        policy = std::make_unique<GeomancyDynamicPolicy>(*geomancy);
    } else if (policy_name == "random") {
        policy = std::make_unique<RandomPolicy>(true);
    } else {
        policy = std::make_unique<LfuPolicy>();
    }
    ExperimentRunner runner(*system, workload, *policy, shortConfig());
    return runner.run();
}

class DeterminismTest : public testing::TestWithParam<std::string>
{
};

TEST_P(DeterminismTest, IdenticalSeriesAcrossReplays)
{
    ExperimentResult a = runOnce(GetParam());
    ExperimentResult b = runOnce(GetParam());
    ASSERT_EQ(a.totalAccesses, b.totalAccesses);
    for (size_t i = 0; i < a.throughputSeries.size(); ++i)
        ASSERT_DOUBLE_EQ(a.throughputSeries[i], b.throughputSeries[i])
            << "diverged at access " << i;
    EXPECT_EQ(a.filesMoved, b.filesMoved);
    EXPECT_EQ(a.bytesMoved, b.bytesMoved);
    ASSERT_EQ(a.moveEvents.size(), b.moveEvents.size());
    for (size_t i = 0; i < a.moveEvents.size(); ++i) {
        EXPECT_EQ(a.moveEvents[i].accessNumber,
                  b.moveEvents[i].accessNumber);
        EXPECT_EQ(a.moveEvents[i].filesMoved, b.moveEvents[i].filesMoved);
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, DeterminismTest,
                         testing::Values("lfu", "random", "geomancy"),
                         [](const auto &info) { return info.param; });

TEST(Determinism, DifferentSeedsDiffer)
{
    auto s1 = storage::makeBlueskySystem(7);
    auto s2 = storage::makeBlueskySystem(8);
    workload::Belle2Workload w1(*s1);
    workload::Belle2Workload w2(*s2);
    NoOpPolicy p1, p2;
    ExperimentRunner r1(*s1, w1, p1, shortConfig());
    ExperimentRunner r2(*s2, w2, p2, shortConfig());
    ExperimentResult a = r1.run();
    ExperimentResult b = r2.run();
    size_t same = 0;
    size_t n = std::min(a.throughputSeries.size(),
                        b.throughputSeries.size());
    for (size_t i = 0; i < n; ++i)
        if (a.throughputSeries[i] == b.throughputSeries[i])
            ++same;
    EXPECT_LT(same, n / 10);
}

} // namespace
} // namespace core
} // namespace geo
