/**
 * @file
 * Tests for the access-gap predictor (paper Section X future work).
 */

#include <gtest/gtest.h>

#include "core/gap_predictor.hh"

namespace geo {
namespace core {
namespace {

/** Insert accesses of `file` opening every `period` s, lasting `busy`. */
void
insertPeriodic(ReplayDb &db, storage::FileId file, size_t count,
               double period, double busy, double start = 0.0)
{
    for (size_t i = 0; i < count; ++i) {
        PerfRecord rec;
        rec.file = file;
        rec.device = 0;
        rec.rb = 1000;
        double open_time = start + static_cast<double>(i) * period;
        rec.ots = static_cast<int64_t>(open_time);
        rec.otms = 0;
        rec.cts = static_cast<int64_t>(open_time + busy);
        rec.ctms = 0;
        rec.throughput = 1000.0 / busy;
        db.insertAccess(rec);
    }
}

TEST(GapPredictor, NoHistoryNoPrediction)
{
    ReplayDb db;
    GapPredictor predictor(db);
    EXPECT_FALSE(predictor.predict(42).has_value());
}

TEST(GapPredictor, TooFewSamplesNoPrediction)
{
    ReplayDb db;
    insertPeriodic(db, 1, 3, 10.0, 1.0); // only 2 gaps < minSamples 4
    GapPredictor predictor(db);
    EXPECT_FALSE(predictor.predict(1).has_value());
}

TEST(GapPredictor, PeriodicAccessGap)
{
    ReplayDb db;
    // Opens every 10 s, busy for 1 s: gaps of 9 s.
    insertPeriodic(db, 1, 20, 10.0, 1.0);
    GapPredictor predictor(db);
    auto prediction = predictor.predict(1);
    ASSERT_TRUE(prediction.has_value());
    EXPECT_NEAR(prediction->expectedGapSeconds, 9.0, 0.01);
    EXPECT_NEAR(prediction->shortestRecentGap, 9.0, 0.01);
    EXPECT_EQ(prediction->samples, 19u);
}

TEST(GapPredictor, RecentBehaviorDominates)
{
    ReplayDb db;
    // Old: sparse accesses (gaps 99 s); recent: dense (gaps 1 s).
    insertPeriodic(db, 1, 10, 100.0, 1.0, 0.0);
    insertPeriodic(db, 1, 30, 2.0, 1.0, 2000.0);
    GapPredictor predictor(db);
    auto prediction = predictor.predict(1);
    ASSERT_TRUE(prediction.has_value());
    EXPECT_LT(prediction->expectedGapSeconds, 10.0)
        << "EWMA should track the recent dense phase";
}

TEST(GapPredictor, OverlappingAccessesClampToZero)
{
    ReplayDb db;
    // Accesses that overlap (close after the next open).
    insertPeriodic(db, 1, 10, 1.0, 5.0);
    GapPredictor predictor(db);
    auto prediction = predictor.predict(1);
    ASSERT_TRUE(prediction.has_value());
    EXPECT_DOUBLE_EQ(prediction->expectedGapSeconds, 0.0);
}

TEST(GapPredictor, FitsInGapDecisions)
{
    ReplayDb db;
    insertPeriodic(db, 1, 20, 10.0, 1.0); // gaps of 9 s
    GapPredictor predictor(db);
    EXPECT_TRUE(predictor.fitsInGap(1, 2.0, 1.5));  // 3 s < 9 s
    EXPECT_FALSE(predictor.fitsInGap(1, 8.0, 1.5)); // 12 s > 9 s
}

TEST(GapPredictor, UnknownFileAlwaysFits)
{
    ReplayDb db;
    GapPredictor predictor(db);
    EXPECT_TRUE(predictor.fitsInGap(999, 1e9));
}

TEST(GapPredictorDeathTest, BadConfig)
{
    ReplayDb db;
    GapPredictorConfig config;
    config.alpha = 0.0;
    EXPECT_DEATH(GapPredictor(db, config), "alpha");
    GapPredictorConfig tiny;
    tiny.historyPerFile = 1;
    EXPECT_DEATH(GapPredictor(db, tiny), "historyPerFile");
}

} // namespace
} // namespace core
} // namespace geo
