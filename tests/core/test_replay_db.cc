/**
 * @file
 * Tests for the SQLite-backed ReplayDB.
 */

#include <gtest/gtest.h>

#include "core/replay_db.hh"

namespace geo {
namespace core {
namespace {

PerfRecord
record(storage::FileId file, storage::DeviceId device, double throughput)
{
    PerfRecord rec;
    rec.file = file;
    rec.device = device;
    rec.rb = 1000;
    rec.ots = 1;
    rec.cts = 2;
    rec.throughput = throughput;
    return rec;
}

TEST(ReplayDb, StartsEmpty)
{
    ReplayDb db;
    EXPECT_EQ(db.accessCount(), 0);
    EXPECT_EQ(db.movementCount(), 0);
    EXPECT_TRUE(db.recentAccesses(10).empty());
}

TEST(ReplayDb, InsertAndCount)
{
    ReplayDb db;
    EXPECT_GT(db.insertAccess(record(1, 0, 100.0)), 0);
    db.insertAccess(record(2, 1, 200.0));
    EXPECT_EQ(db.accessCount(), 2);
}

TEST(ReplayDb, BulkInsertTransaction)
{
    ReplayDb db;
    std::vector<PerfRecord> batch;
    for (int i = 0; i < 100; ++i)
        batch.push_back(record(static_cast<storage::FileId>(i), 0, i));
    db.insertAccesses(batch);
    EXPECT_EQ(db.accessCount(), 100);
}

TEST(ReplayDb, RecentAccessesOldestFirstWindow)
{
    ReplayDb db;
    for (int i = 0; i < 10; ++i)
        db.insertAccess(record(static_cast<storage::FileId>(i), 0,
                               static_cast<double>(i)));
    std::vector<PerfRecord> recent = db.recentAccesses(3);
    ASSERT_EQ(recent.size(), 3u);
    EXPECT_EQ(recent[0].file, 7u);
    EXPECT_EQ(recent[1].file, 8u);
    EXPECT_EQ(recent[2].file, 9u);
}

TEST(ReplayDb, PerDeviceQuery)
{
    ReplayDb db;
    db.insertAccess(record(1, 0, 10.0));
    db.insertAccess(record(2, 1, 20.0));
    db.insertAccess(record(3, 0, 30.0));
    std::vector<PerfRecord> device0 = db.recentAccessesForDevice(0, 10);
    ASSERT_EQ(device0.size(), 2u);
    EXPECT_EQ(device0[0].file, 1u);
    EXPECT_EQ(device0[1].file, 3u);
}

TEST(ReplayDb, PerFileQueryAndLatest)
{
    ReplayDb db;
    db.insertAccess(record(5, 0, 10.0));
    db.insertAccess(record(5, 1, 20.0));
    db.insertAccess(record(6, 0, 30.0));
    EXPECT_EQ(db.recentAccessesForFile(5, 10).size(), 2u);
    PerfRecord latest;
    ASSERT_TRUE(db.latestAccessForFile(5, latest));
    EXPECT_EQ(latest.device, 1u);
    EXPECT_DOUBLE_EQ(latest.throughput, 20.0);
    EXPECT_FALSE(db.latestAccessForFile(999, latest));
}

TEST(ReplayDb, RoundTripPreservesFields)
{
    ReplayDb db;
    PerfRecord original;
    original.file = 12;
    original.device = 3;
    original.rb = 111;
    original.wb = 222;
    original.ots = 10;
    original.otms = 999;
    original.cts = 11;
    original.ctms = 1;
    original.throughput = 123.456;
    db.insertAccess(original);
    std::vector<PerfRecord> out = db.recentAccesses(1);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].file, original.file);
    EXPECT_EQ(out[0].device, original.device);
    EXPECT_EQ(out[0].rb, original.rb);
    EXPECT_EQ(out[0].wb, original.wb);
    EXPECT_EQ(out[0].ots, original.ots);
    EXPECT_EQ(out[0].otms, original.otms);
    EXPECT_EQ(out[0].cts, original.cts);
    EXPECT_EQ(out[0].ctms, original.ctms);
    EXPECT_DOUBLE_EQ(out[0].throughput, original.throughput);
    EXPECT_GT(out[0].id, 0);
}

TEST(ReplayDb, DeviceThroughputAverages)
{
    ReplayDb db;
    db.insertAccess(record(1, 0, 10.0));
    db.insertAccess(record(2, 0, 30.0));
    db.insertAccess(record(3, 1, 100.0));
    auto avg = db.deviceThroughput(100);
    ASSERT_EQ(avg.size(), 2u);
    for (const auto &[device, mean] : avg) {
        if (device == 0)
            EXPECT_DOUBLE_EQ(mean, 20.0);
        else
            EXPECT_DOUBLE_EQ(mean, 100.0);
    }
}

TEST(ReplayDb, DeviceThroughputWindowLimits)
{
    ReplayDb db;
    db.insertAccess(record(1, 0, 1000.0)); // old sample
    for (int i = 0; i < 5; ++i)
        db.insertAccess(record(2, 0, 10.0));
    auto avg = db.deviceThroughput(5); // excludes the old 1000.0
    ASSERT_EQ(avg.size(), 1u);
    EXPECT_DOUBLE_EQ(avg[0].second, 10.0);
}

TEST(ReplayDb, MovementsTimestampedAndQueryable)
{
    ReplayDb db;
    MovementRecord move;
    move.timestamp = 5.0;
    move.file = 1;
    move.fromDevice = 0;
    move.toDevice = 2;
    move.bytes = 1000;
    move.seconds = 0.5;
    db.insertMovement(move);
    move.timestamp = 15.0;
    db.insertMovement(move);
    EXPECT_EQ(db.movementCount(), 2);
    EXPECT_EQ(db.movementsBetween(0.0, 10.0).size(), 1u);
    EXPECT_EQ(db.movementsBetween(0.0, 20.0).size(), 2u);
    auto recent = db.recentMovements(1);
    ASSERT_EQ(recent.size(), 1u);
    EXPECT_DOUBLE_EQ(recent[0].timestamp, 15.0);
    EXPECT_EQ(recent[0].toDevice, 2u);
}

TEST(ReplayDb, ClearRemovesEverything)
{
    ReplayDb db;
    db.insertAccess(record(1, 0, 1.0));
    MovementRecord move;
    db.insertMovement(move);
    db.clear();
    EXPECT_EQ(db.accessCount(), 0);
    EXPECT_EQ(db.movementCount(), 0);
}

TEST(ReplayDb, FileBackedPersistence)
{
    std::string path = testing::TempDir() + "/geomancy_replaydb_test.db";
    std::remove(path.c_str());
    {
        ReplayDb db(path);
        db.insertAccess(record(1, 0, 42.0));
    }
    {
        ReplayDb db(path);
        EXPECT_EQ(db.accessCount(), 1);
        std::vector<PerfRecord> out = db.recentAccesses(1);
        ASSERT_EQ(out.size(), 1u);
        EXPECT_DOUBLE_EQ(out[0].throughput, 42.0);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace core
} // namespace geo
