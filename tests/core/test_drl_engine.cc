/**
 * @file
 * Tests for the DRL engine: retraining, prediction, candidate scoring.
 */

#include <gtest/gtest.h>

#include "core/drl_engine.hh"

namespace geo {
namespace core {
namespace {

/**
 * A ReplayDB-like training batch with a learnable rule: device 2 is
 * twice as fast as device 0, device 1 in between.
 */
TrainingBatch
syntheticBatch(size_t n = 600)
{
    ReplayDb db;
    DaemonConfig config;
    config.smoothingWindow = 1;
    InterfaceDaemon daemon(db, config);
    Rng rng(404);
    std::vector<PerfRecord> records;
    for (size_t i = 0; i < n; ++i) {
        PerfRecord rec;
        rec.file = i % 8;
        rec.device = static_cast<storage::DeviceId>(i % 3);
        rec.rb = 1000000 + (i % 50) * 1000;
        rec.ots = static_cast<int64_t>(i);
        rec.cts = static_cast<int64_t>(i) + 1;
        double base = 100.0 + 100.0 * static_cast<double>(rec.device);
        rec.throughput = base + rng.normal(0.0, 5.0);
        records.push_back(rec);
    }
    daemon.receiveBatch(records);
    return daemon.buildTrainingBatch({0, 1, 2});
}

DrlConfig
fastConfig()
{
    DrlConfig config;
    config.epochs = 60;
    config.learningRate = 0.1;
    return config;
}

TEST(DrlEngine, NotReadyBeforeRetrain)
{
    DrlEngine engine(fastConfig());
    EXPECT_FALSE(engine.ready());
    EXPECT_DEATH(engine.predictThroughput({0, 0, 0, 0, 0, 0}),
                 "before");
}

TEST(DrlEngine, RetrainSkipsTinyBatches)
{
    DrlEngine engine(fastConfig());
    TrainingBatch tiny;
    RetrainStats stats = engine.retrain(tiny);
    EXPECT_FALSE(stats.trained);
    EXPECT_FALSE(engine.ready());
}

TEST(DrlEngine, RetrainLearnsDeviceOrdering)
{
    DrlEngine engine(fastConfig());
    TrainingBatch batch = syntheticBatch();
    RetrainStats stats = engine.retrain(batch);
    ASSERT_TRUE(stats.trained);
    ASSERT_FALSE(stats.diverged);
    EXPECT_TRUE(engine.ready());
    EXPECT_GT(stats.seconds, 0.0);
    EXPECT_LT(stats.meanAbsRelError, 40.0);

    // Candidate scoring must prefer the fast device for the same
    // access pattern.
    PerfRecord probe;
    probe.file = 3;
    probe.device = 0;
    probe.rb = 1010000;
    probe.ots = 300;
    probe.cts = 301;
    std::vector<CandidateScore> scores =
        engine.scoreCandidates(probe, {0, 1, 2});
    ASSERT_EQ(scores.size(), 3u);
    EXPECT_GT(scores[2].predictedThroughput,
              scores[0].predictedThroughput);
}

TEST(DrlEngine, PredictionsArePositiveThroughputs)
{
    DrlEngine engine(fastConfig());
    TrainingBatch batch = syntheticBatch();
    engine.retrain(batch);
    PerfRecord probe;
    probe.file = 1;
    probe.device = 1;
    probe.rb = 1000000;
    probe.ots = 10;
    probe.cts = 11;
    for (storage::DeviceId d : {0u, 1u, 2u}) {
        double tp = engine.predictThroughput(probe.featuresAt(d));
        EXPECT_GE(tp, 0.0);
        EXPECT_LT(tp, 1e4); // plausible range given targets 100-300
    }
}

TEST(DrlEngine, ScoreCandidatesTracksDevices)
{
    DrlEngine engine(fastConfig());
    engine.retrain(syntheticBatch());
    PerfRecord probe;
    probe.rb = 1000000;
    probe.ots = 5;
    probe.cts = 6;
    std::vector<CandidateScore> scores =
        engine.scoreCandidates(probe, {2, 0});
    ASSERT_EQ(scores.size(), 2u);
    EXPECT_EQ(scores[0].device, 2u);
    EXPECT_EQ(scores[1].device, 0u);
    EXPECT_GE(engine.lastPredictionMillis(), 0.0);
}

TEST(DrlEngine, MaeAdjustmentCanBeDisabled)
{
    DrlConfig with = fastConfig();
    DrlConfig without = fastConfig();
    without.adjustWithMae = false;
    DrlEngine engine_with(with);
    DrlEngine engine_without(without);
    TrainingBatch batch = syntheticBatch();
    engine_with.retrain(batch);
    engine_without.retrain(batch);
    // Same seed/model/data: the only difference is the adjustment.
    PerfRecord probe;
    probe.rb = 1000000;
    probe.ots = 5;
    probe.cts = 6;
    double adjusted = engine_with.predictThroughput(probe.featuresAt(1));
    double raw = engine_without.predictThroughput(probe.featuresAt(1));
    EXPECT_NE(adjusted, raw);
}

TEST(DrlEngine, RepeatedRetrainImproves)
{
    DrlEngine engine(fastConfig());
    TrainingBatch batch = syntheticBatch();
    RetrainStats first = engine.retrain(batch);
    RetrainStats second = engine.retrain(batch);
    ASSERT_TRUE(first.trained);
    ASSERT_TRUE(second.trained);
    EXPECT_LE(second.meanAbsRelError, first.meanAbsRelError * 1.5);
}

TEST(DrlEngineDeathTest, RecurrentModelRejected)
{
    DrlConfig config;
    config.modelNumber = 12; // LSTM
    EXPECT_DEATH(DrlEngine{config}, "dense");
}

} // namespace
} // namespace core
} // namespace geo
