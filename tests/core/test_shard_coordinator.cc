/**
 * @file
 * Tests for the fleet-scale shard coordinator: partition stability,
 * cross-shard admission budgets, safe-mode fan-out, the 1-shard ==
 * monolith equivalence, and 4-shard same-seed twin determinism
 * (byte-identical ledgers and checkpoint CRCs).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "core/shard_coordinator.hh"
#include "storage/bluesky.hh"
#include "util/crc32.hh"
#include "workload/belle2.hh"

namespace geo {
namespace core {
namespace {

GeomancyConfig
fastConfig()
{
    GeomancyConfig config;
    config.drl.epochs = 5;
    config.daemon.windowPerDevice = 400;
    config.minHistory = 200;
    return config;
}

ShardCoordinatorConfig
fastCoordConfig(size_t shards)
{
    ShardCoordinatorConfig config;
    config.shardCount = shards;
    config.base = fastConfig();
    return config;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(ShardCoordinator, HashPartitionStableAndComplete)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    ShardCoordinator coordinator(*system, workload.files(),
                                 fastCoordConfig(4));
    ASSERT_EQ(coordinator.shardCount(), 4u);

    // Every managed file lands in exactly one shard, the one the
    // stable hash names; re-hashing gives the same answer.
    std::set<storage::FileId> seen;
    for (size_t i = 0; i < coordinator.shardCount(); ++i) {
        for (storage::FileId file : coordinator.shardFiles(i)) {
            EXPECT_TRUE(seen.insert(file).second)
                << "file " << file << " in two shards";
            EXPECT_EQ(ShardCoordinator::shardForFile(file, 4), i);
            EXPECT_EQ(ShardCoordinator::shardForFile(file, 4),
                      ShardCoordinator::shardForFile(file, 4));
        }
    }
    EXPECT_EQ(seen.size(), workload.files().size());
}

TEST(ShardCoordinator, ExplicitAssignmentOverridesShardCount)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    const std::vector<storage::FileId> &files = workload.files();
    ASSERT_GE(files.size(), 4u);
    std::vector<std::vector<storage::FileId>> assignment(2);
    for (size_t i = 0; i < files.size(); ++i)
        assignment[i % 2].push_back(files[i]);

    ShardCoordinatorConfig config = fastCoordConfig(7); // overridden
    ShardCoordinator coordinator(*system, assignment, config);
    EXPECT_EQ(coordinator.shardCount(), 2u);
    EXPECT_EQ(coordinator.shardFiles(0), assignment[0]);
    EXPECT_EQ(coordinator.shardFiles(1), assignment[1]);
}

TEST(ShardCoordinatorDeathTest, EmptyShardPanics)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    std::vector<std::vector<storage::FileId>> assignment(2);
    assignment[0] = workload.files(); // shard 1 left empty
    ShardCoordinatorConfig config = fastCoordConfig(2);
    EXPECT_DEATH(ShardCoordinator(*system, assignment, config),
                 "no files");
}

TEST(ShardCoordinator, MoveBudgetNeverAdmitsBeyondK)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    ShardCoordinatorConfig config = fastCoordConfig(2);
    const size_t K = 3;
    config.maxMovesPerDevicePerRound = K;
    ShardCoordinator coordinator(*system, workload.files(), config);

    // Exactly K moves touching device 0 are admitted; the K+1th is
    // denied no matter which endpoint device 0 is.
    for (size_t i = 0; i < K; ++i)
        EXPECT_TRUE(coordinator.admitMove(0, 1, 100));
    EXPECT_FALSE(coordinator.admitMove(0, 2, 100));
    EXPECT_FALSE(coordinator.admitMove(2, 0, 100));
    EXPECT_EQ(coordinator.movesDenied(), 2u);
    EXPECT_EQ(coordinator.roundUsage(0).moves, K);

    // Device 1 was charged as the target of the same K moves, so it
    // is saturated too; devices 2..5 are untouched.
    EXPECT_FALSE(coordinator.admitMove(2, 1, 100));
    EXPECT_TRUE(coordinator.admitMove(2, 3, 100));
}

TEST(ShardCoordinator, ByteBudgetChargesBothEndpoints)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    ShardCoordinatorConfig config = fastCoordConfig(2);
    config.maxMovesPerDevicePerRound = 0; // moves unlimited
    config.maxBytesInFlightPerDevice = 1000;
    ShardCoordinator coordinator(*system, workload.files(), config);

    EXPECT_TRUE(coordinator.admitMove(0, 1, 600));
    // 600 already in flight on both 0 and 1: another 600 to either
    // endpoint would exceed the 1000-byte budget.
    EXPECT_FALSE(coordinator.admitMove(0, 2, 600));
    EXPECT_FALSE(coordinator.admitMove(2, 1, 600));
    EXPECT_TRUE(coordinator.admitMove(0, 1, 400)); // exactly to budget
    EXPECT_EQ(coordinator.roundUsage(0).bytes, 1000u);
    EXPECT_EQ(coordinator.roundUsage(1).bytes, 1000u);
}

TEST(ShardCoordinator, SameDeviceAndOutOfRangePassUncharged)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    ShardCoordinatorConfig config = fastCoordConfig(2);
    config.maxMovesPerDevicePerRound = 1;
    ShardCoordinator coordinator(*system, workload.files(), config);

    // Same-device and out-of-range requests never transfer anything
    // (the control agent skips them); they pass without spending
    // budget.
    EXPECT_TRUE(coordinator.admitMove(0, 0, 1 << 20));
    EXPECT_TRUE(coordinator.admitMove(99, 0, 1 << 20));
    EXPECT_EQ(coordinator.roundUsage(0).moves, 0u);
    EXPECT_TRUE(coordinator.admitMove(0, 1, 100));
}

TEST(ShardCoordinator, RunRoundRunsEveryShardAndResetsBudgets)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    ShardCoordinatorConfig config = fastCoordConfig(4);
    config.maxMovesPerDevicePerRound = 1;
    ShardCoordinator coordinator(*system, workload.files(), config);

    // Saturate device 0 by hand, then run a round: beginRound() must
    // wipe the manual charges.  With no telemetry yet every shard
    // skips, so the round itself admits nothing.
    EXPECT_TRUE(coordinator.admitMove(0, 1, 1));
    EXPECT_FALSE(coordinator.admitMove(0, 2, 1));
    std::vector<CycleReport> reports = coordinator.runRound();
    ASSERT_EQ(reports.size(), 4u);
    for (const CycleReport &report : reports)
        EXPECT_TRUE(report.skipped);
    EXPECT_EQ(coordinator.roundsRun(), 1u);
    EXPECT_TRUE(coordinator.admitMove(0, 1, 1));
}

TEST(ShardCoordinator, SafeModeFanOutTripsCoTenants)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    ShardCoordinator coordinator(*system, workload.files(),
                                 fastCoordConfig(4));

    // Trip shard 0 as a substrate fault would; the next round must
    // propagate safe mode to every co-tenant before they act.
    ASSERT_TRUE(coordinator.shard(0).guardrails().tripSafeMode(
        coordinator.shard(0).cyclesRun()));
    EXPECT_EQ(coordinator.fanOuts(), 0u);
    coordinator.runRound();
    EXPECT_EQ(coordinator.fanOuts(), 3u);
    for (size_t i = 0; i < coordinator.shardCount(); ++i)
        EXPECT_TRUE(coordinator.shard(i).guardrails().safeMode())
            << "shard " << i;

    // Fan-out is edge-triggered: another round while everyone is
    // already safe does not re-trip.
    coordinator.runRound();
    EXPECT_EQ(coordinator.fanOuts(), 3u);
}

TEST(ShardCoordinator, OneShardMatchesMonolith)
{
    // A 1-shard coordinator takes the same code path as a bare
    // Geomancy: no observe filter, no window scaling, unchanged
    // seeds.  Same seed, same schedule => byte-identical engine cuts.
    auto runMonolith = [] {
        auto system = storage::makeBlueskySystem();
        workload::Belle2Workload workload(*system);
        Geomancy geomancy(*system, workload.files(), fastConfig());
        for (int run = 0; run < 3; ++run)
            workload.executeRun();
        for (int cycle = 0; cycle < 3; ++cycle) {
            geomancy.runCycle();
            workload.executeRun();
        }
        std::ostringstream os;
        util::StateWriter w(os);
        geomancy.saveState(w);
        return os.str();
    };
    auto runSharded = [] {
        auto system = storage::makeBlueskySystem();
        workload::Belle2Workload workload(*system);
        ShardCoordinatorConfig config = fastCoordConfig(1);
        config.maxMovesPerDevicePerRound = 0; // monolith has no budget
        ShardCoordinator coordinator(*system, workload.files(), config);
        for (int run = 0; run < 3; ++run)
            workload.executeRun();
        for (int cycle = 0; cycle < 3; ++cycle) {
            coordinator.runRound();
            workload.executeRun();
        }
        std::ostringstream os;
        util::StateWriter w(os);
        coordinator.shard(0).saveState(w);
        return os.str();
    };
    std::string mono = runMonolith();
    std::string sharded = runSharded();
    ASSERT_FALSE(mono.empty());
    EXPECT_EQ(mono, sharded);
}

/**
 * One full 4-shard run over a multi-tenant workload: warm up, run
 * `rounds` coordinator rounds with workload traffic in between, then
 * return every ledger file's bytes plus the final checkpoint payload.
 */
std::pair<std::vector<std::string>, std::string>
runTwinStack(const std::string &ledger_base, size_t rounds)
{
    for (size_t i = 0; i < 4; ++i)
        std::filesystem::remove(
            ShardCoordinator::ledgerPath(ledger_base, i));

    auto system = storage::makeBlueskySystem();
    workload::Belle2Config wcfg;
    wcfg.tenantCount = 3;
    workload::Belle2Workload workload(*system, wcfg);
    ShardCoordinatorConfig config;
    config.shardCount = 4;
    config.base = fastConfig();
    config.maxMovesPerDevicePerRound = 2;
    auto coordinator = std::make_unique<ShardCoordinator>(
        *system, workload.files(), config);
    coordinator->attachLedgers(ledger_base);

    for (int run = 0; run < 3; ++run)
        workload.executeRun();
    for (size_t round = 0; round < rounds; ++round) {
        coordinator->runRound();
        workload.executeRun();
    }

    std::ostringstream os;
    util::StateWriter w(os);
    coordinator->saveState(w);
    coordinator.reset(); // close the ledgers before reading them

    std::vector<std::string> ledgers;
    for (size_t i = 0; i < 4; ++i)
        ledgers.push_back(
            slurp(ShardCoordinator::ledgerPath(ledger_base, i)));
    return {ledgers, os.str()};
}

TEST(ShardCoordinator, FourShardTwinRunsByteIdentical)
{
    auto [ledgers_a, state_a] = runTwinStack("twin-a-ledger", 4);
    auto [ledgers_b, state_b] = runTwinStack("twin-b-ledger", 4);

    ASSERT_EQ(ledgers_a.size(), ledgers_b.size());
    bool any_rows = false;
    for (size_t i = 0; i < ledgers_a.size(); ++i) {
        EXPECT_EQ(ledgers_a[i], ledgers_b[i])
            << "ledger of shard " << i << " diverged";
        any_rows = any_rows || !ledgers_a[i].empty();
    }
    EXPECT_TRUE(any_rows) << "no ledger wrote a single row";
    EXPECT_EQ(util::crc32(state_a), util::crc32(state_b));
    EXPECT_EQ(state_a, state_b);

    for (size_t i = 0; i < 4; ++i) {
        std::filesystem::remove(
            ShardCoordinator::ledgerPath("twin-a-ledger", i));
        std::filesystem::remove(
            ShardCoordinator::ledgerPath("twin-b-ledger", i));
    }
}

TEST(ShardCoordinator, CheckpointRoundTripRestoresCounters)
{
    // A restart reopens the same on-disk per-shard ReplayDBs (the
    // snapshot carries a watermark, not the rows), so the round trip
    // must share the database files between the two stacks.
    const std::string db_base = "coord-roundtrip.db";
    for (size_t i = 0; i < 2; ++i)
        for (const char *suffix : {"", "-wal", "-shm"})
            std::filesystem::remove(
                ShardCoordinator::dbPath(db_base, i) + suffix);
    auto buildStack = [&](storage::StorageSystem &system,
                          workload::Belle2Workload &workload) {
        ShardCoordinatorConfig config = fastCoordConfig(2);
        return std::make_unique<ShardCoordinator>(
            system, workload.files(), config, db_base);
    };

    auto system_a = storage::makeBlueskySystem();
    workload::Belle2Workload workload_a(*system_a);
    auto a = buildStack(*system_a, workload_a);
    for (int run = 0; run < 3; ++run)
        workload_a.executeRun();
    for (int round = 0; round < 2; ++round) {
        a->runRound();
        workload_a.executeRun();
    }
    std::ostringstream os;
    util::StateWriter w(os);
    a->saveState(w);
    uint64_t rounds = a->roundsRun();
    uint64_t denied = a->movesDenied();
    size_t peak_moves = a->peakDeviceMoves();
    a.reset(); // close the DB connections before the restart

    auto system_b = storage::makeBlueskySystem();
    workload::Belle2Workload workload_b(*system_b);
    auto b = buildStack(*system_b, workload_b);
    std::istringstream is(os.str());
    util::StateReader r(is);
    b->loadState(r);
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(b->roundsRun(), rounds);
    EXPECT_EQ(b->movesDenied(), denied);
    EXPECT_EQ(b->peakDeviceMoves(), peak_moves);

    // The restored stack re-serializes to the same bytes.
    std::ostringstream os2;
    util::StateWriter w2(os2);
    b->saveState(w2);
    EXPECT_EQ(os.str(), os2.str());
    b.reset();
    for (size_t i = 0; i < 2; ++i)
        for (const char *suffix : {"", "-wal", "-shm"})
            std::filesystem::remove(
                ShardCoordinator::dbPath(db_base, i) + suffix);
}

TEST(ShardCoordinator, WrongShardCountSnapshotFailsLoudly)
{
    auto system = storage::makeBlueskySystem();
    workload::Belle2Workload workload(*system);
    auto four = std::make_unique<ShardCoordinator>(
        *system, workload.files(), fastCoordConfig(4));
    std::ostringstream os;
    util::StateWriter w(os);
    four->saveState(w);

    auto system2 = storage::makeBlueskySystem();
    workload::Belle2Workload workload2(*system2);
    auto two = std::make_unique<ShardCoordinator>(
        *system2, workload2.files(), fastCoordConfig(2));
    std::istringstream is(os.str());
    util::StateReader r(is);
    two->loadState(r);
    EXPECT_FALSE(r.ok());
}

} // namespace
} // namespace core
} // namespace geo
