/**
 * @file
 * Bit-identity tests for the batched scoring path: scoreLocations()
 * assembles one feature matrix per decision cycle, but every predicted
 * value must equal the scalar predictThroughput() result bitwise, for
 * both model orientations (throughput and latency targets).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/drl_engine.hh"
#include "core/interface_daemon.hh"
#include "core/replay_db.hh"
#include "util/random.hh"

namespace geo {
namespace core {
namespace {

PerfRecord
throughputRecord(storage::FileId file, storage::DeviceId device,
                 double throughput, int64_t at)
{
    PerfRecord rec;
    rec.file = file;
    rec.device = device;
    rec.rb = 1000000;
    rec.ots = at;
    rec.otms = 0;
    rec.cts = at + 2;
    rec.ctms = 0;
    rec.throughput = throughput;
    return rec;
}

PerfRecord
latencyRecord(storage::FileId file, storage::DeviceId device,
              double duration, int64_t at)
{
    PerfRecord rec;
    rec.file = file;
    rec.device = device;
    rec.rb = 1000000;
    rec.ots = at;
    rec.otms = 0;
    rec.cts = at + static_cast<int64_t>(duration);
    rec.ctms =
        static_cast<int64_t>((duration - std::floor(duration)) * 1000.0);
    rec.throughput = 1e6 / duration;
    return rec;
}

/** Train an engine on synthetic telemetry with real variance. */
struct TrainedEngine
{
    ReplayDb db;
    InterfaceDaemon daemon;
    DrlEngine engine;
    std::vector<PerfRecord> latest;

    static DaemonConfig daemonConfig(ModelTarget target)
    {
        DaemonConfig config;
        config.target = target;
        config.smoothingWindow = 1;
        return config;
    }

    static DrlConfig engineConfig()
    {
        DrlConfig config;
        config.epochs = 25;
        return config;
    }

    explicit TrainedEngine(ModelTarget target)
        : daemon(db, daemonConfig(target)), engine(engineConfig())
    {
        Rng rng(17);
        std::vector<PerfRecord> records;
        for (int i = 0; i < 500; ++i) {
            storage::FileId file = i % 10;
            storage::DeviceId device =
                static_cast<storage::DeviceId>(i % 4);
            if (target == ModelTarget::Latency) {
                double duration = 1.0 +
                                  0.6 * static_cast<double>(i % 3) +
                                  rng.uniform(0.0, 0.2);
                records.push_back(
                    latencyRecord(file, device, duration, i * 5));
            } else {
                double throughput = 4e5 +
                                    2e5 * static_cast<double>(i % 4) +
                                    rng.uniform(0.0, 1e5);
                records.push_back(
                    throughputRecord(file, device, throughput, i * 5));
            }
        }
        daemon.receiveBatch(records);
        RetrainStats stats =
            engine.retrain(daemon.buildTrainingBatch({0, 1, 2, 3}));
        EXPECT_TRUE(stats.trained);
        EXPECT_TRUE(engine.ready());
        for (int i = 0; i < 10; ++i)
            latest.push_back(records[records.size() - 10 + i]);
    }
};

void
expectBatchedMatchesScalar(TrainedEngine &fixture)
{
    const std::vector<storage::DeviceId> devices = {0, 1, 2, 3};
    std::vector<std::vector<CandidateScore>> batched =
        fixture.engine.scoreLocations(fixture.latest, devices);
    ASSERT_EQ(batched.size(), fixture.latest.size());
    for (size_t f = 0; f < fixture.latest.size(); ++f) {
        ASSERT_EQ(batched[f].size(), devices.size());
        for (size_t d = 0; d < devices.size(); ++d) {
            EXPECT_EQ(batched[f][d].device, devices[d]);
            double scalar = fixture.engine.predictThroughput(
                fixture.latest[f].featuresAt(devices[d]));
            // Bitwise, not approximate: the batched matrix walk must
            // preserve the exact per-row arithmetic.
            EXPECT_EQ(batched[f][d].predictedThroughput, scalar)
                << "file row " << f << " device " << devices[d];
        }
    }
}

TEST(BatchedScoring, MatchesScalarThroughputTarget)
{
    TrainedEngine fixture(ModelTarget::Throughput);
    expectBatchedMatchesScalar(fixture);
}

TEST(BatchedScoring, MatchesScalarLatencyTarget)
{
    TrainedEngine fixture(ModelTarget::Latency);
    EXPECT_TRUE(fixture.engine.lowerIsBetter());
    expectBatchedMatchesScalar(fixture);
}

TEST(BatchedScoring, SingleFileMatchesScoreCandidates)
{
    TrainedEngine fixture(ModelTarget::Throughput);
    const std::vector<storage::DeviceId> devices = {0, 1, 2, 3};
    std::vector<CandidateScore> single =
        fixture.engine.scoreCandidates(fixture.latest.front(), devices);
    std::vector<std::vector<CandidateScore>> batched =
        fixture.engine.scoreLocations(
            std::vector<PerfRecord>{fixture.latest.front()}, devices);
    ASSERT_EQ(batched.size(), 1u);
    ASSERT_EQ(batched[0].size(), single.size());
    for (size_t d = 0; d < single.size(); ++d) {
        EXPECT_EQ(batched[0][d].device, single[d].device);
        EXPECT_EQ(batched[0][d].predictedThroughput,
                  single[d].predictedThroughput);
    }
}

TEST(BatchedScoring, PredictBatchSingleRowMatchesScalar)
{
    TrainedEngine fixture(ModelTarget::Throughput);
    std::vector<double> features =
        fixture.latest.front().featuresAt(2);
    nn::Matrix row(1, features.size());
    for (size_t c = 0; c < features.size(); ++c)
        row.at(0, c) = features[c];
    std::vector<double> batched = fixture.engine.predictBatch(row);
    ASSERT_EQ(batched.size(), 1u);
    EXPECT_EQ(batched[0], fixture.engine.predictThroughput(features));
}

TEST(BatchedScoring, EmptyInputsYieldEmptyOutputs)
{
    TrainedEngine fixture(ModelTarget::Throughput);
    EXPECT_TRUE(fixture.engine
                    .scoreLocations(std::vector<PerfRecord>{}, {0, 1})
                    .empty());
    std::vector<std::vector<CandidateScore>> no_devices =
        fixture.engine.scoreLocations(fixture.latest, {});
    ASSERT_EQ(no_devices.size(), fixture.latest.size());
    for (const std::vector<CandidateScore> &scores : no_devices)
        EXPECT_TRUE(scores.empty());
}

TEST(BatchedScoringDeathTest, PanicsBeforeRetrain)
{
    DrlEngine engine{DrlConfig{}};
    PerfRecord rec = throughputRecord(0, 0, 5e5, 10);
    EXPECT_DEATH(engine.scoreLocations(rec, {0, 1}),
                 "before a successful retrain");
    nn::Matrix row(1, 4);
    EXPECT_DEATH(engine.predictBatch(row), "before a successful retrain");
}

} // namespace
} // namespace core
} // namespace geo
