/**
 * @file
 * Tests for the trace-replay workload.
 */

#include <gtest/gtest.h>

#include "storage/bluesky.hh"
#include "trace/eos_trace_gen.hh"
#include "workload/trace_replay.hh"

namespace geo {
namespace workload {
namespace {

std::vector<trace::AccessRecord>
sampleTrace(size_t n = 300)
{
    trace::EosTraceConfig config;
    config.fileCount = 40;
    trace::EosTraceGenerator gen(config);
    return gen.generate(n);
}

TEST(TraceReplay, CreatesFilesOnFirstAppearance)
{
    auto system = storage::makeBlueskySystem();
    std::vector<trace::AccessRecord> records = sampleTrace();
    TraceReplayWorkload replay(*system, records);
    std::set<uint64_t> distinct;
    for (const auto &rec : records)
        distinct.insert(rec.fid);
    EXPECT_EQ(replay.files().size(), distinct.size());
    EXPECT_EQ(system->fileCount(), distinct.size());
}

TEST(TraceReplay, ReplaysAllRecords)
{
    auto system = storage::makeBlueskySystem();
    std::vector<trace::AccessRecord> records = sampleTrace(200);
    TraceReplayWorkload replay(*system, records);
    EXPECT_EQ(replay.remaining(), 200u);
    auto observations = replay.replayAll();
    EXPECT_EQ(observations.size(), 200u);
    EXPECT_TRUE(replay.done());
}

TEST(TraceReplay, IncrementalReplay)
{
    auto system = storage::makeBlueskySystem();
    TraceReplayWorkload replay(*system, sampleTrace(100));
    EXPECT_EQ(replay.replay(30).size(), 30u);
    EXPECT_EQ(replay.remaining(), 70u);
    EXPECT_EQ(replay.replay(1000).size(), 70u);
    EXPECT_TRUE(replay.done());
    EXPECT_TRUE(replay.replay(10).empty());
}

TEST(TraceReplay, PreservesRecordedTiming)
{
    auto system = storage::makeBlueskySystem();
    std::vector<trace::AccessRecord> records = sampleTrace(100);
    double recorded_span = records.back().openTime() -
                           records.front().openTime();
    TraceReplayWorkload replay(*system, records);
    replay.replayAll();
    EXPECT_GE(system->clock().now(), recorded_span);
}

TEST(TraceReplay, BackToBackModeIgnoresGaps)
{
    auto s1 = storage::makeBlueskySystem();
    auto s2 = storage::makeBlueskySystem();
    std::vector<trace::AccessRecord> records = sampleTrace(100);
    TraceReplayConfig timed;
    TraceReplayConfig packed;
    packed.preserveTiming = false;
    TraceReplayWorkload timed_replay(*s1, records, timed);
    TraceReplayWorkload packed_replay(*s2, records, packed);
    timed_replay.replayAll();
    packed_replay.replayAll();
    EXPECT_LT(s2->clock().now(), s1->clock().now());
}

TEST(TraceReplay, MaxFilesCapSkipsExtras)
{
    auto system = storage::makeBlueskySystem();
    TraceReplayConfig config;
    config.maxFiles = 5;
    std::vector<trace::AccessRecord> records = sampleTrace(300);
    TraceReplayWorkload replay(*system, records, config);
    EXPECT_EQ(replay.files().size(), 5u);
    auto observations = replay.replayAll();
    EXPECT_LT(observations.size(), records.size());
    for (const auto &obs : observations)
        EXPECT_LT(obs.file, 5u);
}

TEST(TraceReplay, ReadWriteDirectionFollowsTrace)
{
    auto system = storage::makeBlueskySystem();
    std::vector<trace::AccessRecord> records = sampleTrace(300);
    TraceReplayWorkload replay(*system, records);
    auto observations = replay.replayAll();
    size_t reads = 0, writes = 0;
    for (const auto &obs : observations) {
        reads += obs.readBytes > 0 ? 1 : 0;
        writes += obs.writtenBytes > 0 ? 1 : 0;
    }
    EXPECT_GT(reads, writes); // the EOS trace is read-heavy
    EXPECT_GT(writes, 0u);
}

TEST(TraceReplayDeathTest, EmptyTrace)
{
    auto system = storage::makeBlueskySystem();
    std::vector<trace::AccessRecord> empty;
    EXPECT_DEATH(TraceReplayWorkload(*system, empty), "empty");
}

} // namespace
} // namespace workload
} // namespace geo
