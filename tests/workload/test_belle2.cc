/**
 * @file
 * Tests for the BELLE II workload generator.
 */

#include <gtest/gtest.h>

#include "storage/bluesky.hh"
#include "workload/belle2.hh"

namespace geo {
namespace workload {
namespace {

TEST(Belle2Workload, CreatesPaperFileSuite)
{
    auto system = storage::makeBlueskySystem();
    Belle2Workload workload(*system);
    EXPECT_EQ(workload.files().size(), 24u);
    for (storage::FileId file : workload.files()) {
        uint64_t size = system->file(file).sizeBytes;
        EXPECT_GE(size, 583ULL * 1024);
        EXPECT_LE(size, 1181116006ULL);
    }
}

TEST(Belle2Workload, RoundRobinInitialSpread)
{
    auto system = storage::makeBlueskySystem();
    Belle2Workload workload(*system);
    std::vector<size_t> counts = system->filesPerDevice();
    for (size_t count : counts)
        EXPECT_EQ(count, 4u); // 24 files over 6 devices
}

TEST(Belle2Workload, ExplicitInitialLayout)
{
    auto system = storage::makeBlueskySystem();
    Belle2Config config;
    Belle2Workload workload(*system, config, {2});
    for (storage::FileId file : workload.files())
        EXPECT_EQ(system->location(file), 2u);
}

TEST(Belle2Workload, RunVisitsFilesSequentiallyWithRepeats)
{
    auto system = storage::makeBlueskySystem();
    Belle2Workload workload(*system);
    std::vector<AccessEvent> events = workload.nextRun();

    // Events must form 24 consecutive constant-file blocks of 10-20.
    size_t block_start = 0;
    size_t blocks = 0;
    for (size_t i = 1; i <= events.size(); ++i) {
        if (i == events.size() || events[i].file != events[i - 1].file) {
            size_t repeats = i - block_start;
            EXPECT_GE(repeats, 10u);
            EXPECT_LE(repeats, 20u);
            ++blocks;
            block_start = i;
        }
    }
    EXPECT_EQ(blocks, 24u);
}

TEST(Belle2Workload, ReadHeavyMix)
{
    auto system = storage::makeBlueskySystem();
    Belle2Config config;
    config.readFraction = 0.92;
    Belle2Workload workload(*system, config);
    size_t reads = 0, total = 0;
    for (int run = 0; run < 20; ++run) {
        for (const AccessEvent &ev : workload.nextRun()) {
            ++total;
            reads += ev.isRead ? 1 : 0;
        }
    }
    EXPECT_NEAR(static_cast<double>(reads) / static_cast<double>(total),
                0.92, 0.02);
}

TEST(Belle2Workload, BytesWithinSpan)
{
    auto system = storage::makeBlueskySystem();
    Belle2Workload workload(*system);
    const Belle2Config &config = workload.config();
    for (const AccessEvent &ev : workload.nextRun()) {
        uint64_t size = system->file(ev.file).sizeBytes;
        EXPECT_GE(ev.bytes, static_cast<uint64_t>(
                                config.minSpan * 0.99 *
                                static_cast<double>(size)));
        EXPECT_LE(ev.bytes, static_cast<uint64_t>(
                                config.maxSpan * 1.01 *
                                static_cast<double>(size)));
    }
}

TEST(Belle2Workload, ExecuteRunProducesObservations)
{
    auto system = storage::makeBlueskySystem();
    Belle2Workload workload(*system);
    auto observations = workload.executeRun();
    EXPECT_GE(observations.size(), 240u);
    EXPECT_LE(observations.size(), 480u);
    EXPECT_EQ(workload.runsCompleted(), 1u);
    for (const storage::AccessObservation &obs : observations)
        EXPECT_GT(obs.throughput, 0.0);
}

TEST(Belle2Workload, DeterministicWithSeed)
{
    auto s1 = storage::makeBlueskySystem();
    auto s2 = storage::makeBlueskySystem();
    Belle2Config config;
    config.seed = 5;
    Belle2Workload w1(*s1, config);
    Belle2Workload w2(*s2, config);
    std::vector<AccessEvent> e1 = w1.nextRun();
    std::vector<AccessEvent> e2 = w2.nextRun();
    ASSERT_EQ(e1.size(), e2.size());
    for (size_t i = 0; i < e1.size(); ++i) {
        EXPECT_EQ(e1[i].file, e2[i].file);
        EXPECT_EQ(e1[i].bytes, e2[i].bytes);
        EXPECT_EQ(e1[i].isRead, e2[i].isRead);
    }
}

TEST(Belle2WorkloadDeathTest, BadConfig)
{
    auto system = storage::makeBlueskySystem();
    Belle2Config config;
    config.fileCount = 0;
    EXPECT_DEATH(Belle2Workload(*system, config), "fileCount");
    Belle2Config bad_repeats;
    bad_repeats.minRepeats = 30;
    bad_repeats.maxRepeats = 10;
    EXPECT_DEATH(Belle2Workload(*system, bad_repeats), "repeat");
}

} // namespace
} // namespace workload
} // namespace geo
