/**
 * @file
 * Tests for the experiment-3 interference workload.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "storage/bluesky.hh"
#include "workload/belle2.hh"
#include "workload/interference.hh"

namespace geo {
namespace workload {
namespace {

TEST(InterferenceWorkload, UsesDisjointFileSet)
{
    auto system = storage::makeBlueskySystem();
    Belle2Workload tuned(*system);
    InterferenceWorkload other(*system);
    for (storage::FileId file : other.files()) {
        EXPECT_EQ(std::count(tuned.files().begin(), tuned.files().end(),
                             file),
                  0);
    }
    EXPECT_EQ(system->fileCount(), 48u);
}

TEST(InterferenceWorkload, SharesMounts)
{
    auto system = storage::makeBlueskySystem();
    Belle2Workload tuned(*system);
    InterferenceWorkload other(*system);
    // Both workloads spread over the same six devices.
    std::vector<size_t> counts = system->filesPerDevice();
    for (size_t count : counts)
        EXPECT_EQ(count, 8u);
}

TEST(InterferenceWorkload, RunsAndContends)
{
    auto system = storage::makeBlueskySystem();
    Belle2Workload tuned(*system);
    InterferenceWorkload other(*system);

    auto tuned_alone = tuned.executeRun();
    double mean_alone = 0.0;
    for (const auto &obs : tuned_alone)
        mean_alone += obs.throughput;
    mean_alone /= static_cast<double>(tuned_alone.size());

    // Saturate the devices with *concurrent* interference runs, then
    // measure the tuned workload again: contention must show. (The
    // serial executeRun would let the tuned devices idle while the
    // interferer runs; the concurrent variant overlaps them, which is
    // how a second user actually contends.)
    for (int i = 0; i < 3; ++i)
        other.executeRunConcurrent();
    auto tuned_contended = tuned.executeRun();
    double mean_contended = 0.0;
    for (const auto &obs : tuned_contended)
        mean_contended += obs.throughput;
    mean_contended /= static_cast<double>(tuned_contended.size());

    EXPECT_LT(mean_contended, mean_alone);
    EXPECT_EQ(other.runsCompleted(), 3u);
}

TEST(InterferenceWorkload, DefaultConfigDistinct)
{
    Belle2Config config = InterferenceWorkload::defaultConfig();
    Belle2Config base;
    EXPECT_NE(config.namePrefix, base.namePrefix);
    EXPECT_NE(config.seed, base.seed);
    EXPECT_EQ(config.fileCount, base.fileCount);
}

} // namespace
} // namespace workload
} // namespace geo
