/**
 * @file
 * Bit-identity tests for the blocked/parallel matmul kernels against
 * the naive ikj reference: the optimized paths may regroup independent
 * elements but must visit each (i, j)'s k index in ascending order, so
 * every result is required to be bitwise equal, not just close.
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "nn/matrix.hh"
#include "util/random.hh"

namespace geo {
namespace nn {
namespace {

Matrix
randomMatrix(size_t rows, size_t cols, Rng &rng)
{
    Matrix m(rows, cols);
    m.fillNormal(rng, 1.0);
    return m;
}

void
expectBitwiseEqual(const Matrix &a, const Matrix &b, const char *what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            ASSERT_EQ(a.at(r, c), b.at(r, c))
                << what << " differs at (" << r << ", " << c << ")";
}

TEST(MatrixParallel, MatmulMatchesNaiveOverRandomShapes)
{
    Rng rng(99);
    // Degenerate and boundary-straddling shapes: single row/column,
    // exact block multiples, one past a block edge.
    const std::vector<std::array<size_t, 3>> shapes = {
        {1, 1, 1},   {1, 17, 1},  {17, 1, 9},  {1, 9, 33},
        {5, 7, 3},   {8, 8, 8},   {13, 64, 5}, {3, 128, 129},
        {2, 129, 257}, {31, 130, 64},
    };
    for (const auto &[m, k, n] : shapes) {
        Matrix a = randomMatrix(m, k, rng);
        Matrix b = randomMatrix(k, n, rng);
        expectBitwiseEqual(a.matmul(b), a.matmulNaive(b), "matmul");
    }
}

TEST(MatrixParallel, MatmulZeroRowsAndCols)
{
    Matrix a(0, 5), b(5, 3);
    Matrix out = a.matmul(b);
    EXPECT_EQ(out.rows(), 0u);
    EXPECT_EQ(out.cols(), 3u);

    Matrix c(4, 5), empty(5, 0);
    Matrix wide = c.matmul(empty);
    EXPECT_EQ(wide.rows(), 4u);
    EXPECT_EQ(wide.cols(), 0u);
}

TEST(MatrixParallel, MatmulZeroEntriesTakeSkipPath)
{
    // The kernels skip lhs zeros; a sparse lhs must still match.
    Rng rng(5);
    Matrix a = randomMatrix(9, 40, rng);
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            if ((r + c) % 3 != 0)
                a.at(r, c) = 0.0;
    Matrix b = randomMatrix(40, 21, rng);
    expectBitwiseEqual(a.matmul(b), a.matmulNaive(b), "sparse matmul");
}

TEST(MatrixParallel, LargeMatmulAboveParallelThreshold)
{
    // 160x200 * 200x180: 2*160*200*180 = 11.5M flops, above the
    // parallel dispatch threshold, and K=200, N=180 straddle the
    // blocked path's panel edges when combined with bigger shapes.
    Rng rng(1234);
    Matrix a = randomMatrix(160, 200, rng);
    Matrix b = randomMatrix(200, 180, rng);
    expectBitwiseEqual(a.matmul(b), a.matmulNaive(b), "large matmul");
}

TEST(MatrixParallel, MatmulIntoReusesOutput)
{
    Rng rng(8);
    Matrix a = randomMatrix(6, 10, rng);
    Matrix b = randomMatrix(10, 4, rng);
    Matrix out(31, 2, 7.0); // wrong shape, stale values
    a.matmulInto(b, out);
    expectBitwiseEqual(out, a.matmulNaive(b), "matmulInto");
}

TEST(MatrixParallel, MatmulTransposedMatchesNaive)
{
    Rng rng(77);
    const std::vector<std::array<size_t, 3>> shapes = {
        {1, 1, 1}, {4, 9, 6}, {1, 33, 17}, {25, 130, 3}, {64, 64, 64},
    };
    for (const auto &[m, k, n] : shapes) {
        Matrix a = randomMatrix(m, k, rng);
        Matrix bt = randomMatrix(n, k, rng); // b transposed: n x k
        expectBitwiseEqual(a.matmulTransposed(bt),
                           a.matmulNaive(bt.transposed()),
                           "matmulTransposed");
    }
}

TEST(MatrixParallel, TransposedMatmulMatchesNaive)
{
    Rng rng(31);
    const std::vector<std::array<size_t, 3>> shapes = {
        {1, 1, 1}, {9, 4, 6}, {33, 1, 17}, {130, 25, 3}, {64, 64, 64},
    };
    for (const auto &[k, m, n] : shapes) {
        Matrix at = randomMatrix(k, m, rng); // a transposed: k x m
        Matrix b = randomMatrix(k, n, rng);
        expectBitwiseEqual(at.transposedMatmul(b),
                           at.transposed().matmulNaive(b),
                           "transposedMatmul");
    }
}

TEST(MatrixParallel, RepeatedMatmulIsDeterministic)
{
    // Same operands, many runs: parallel scheduling must never leak
    // into results.
    Rng rng(55);
    Matrix a = randomMatrix(96, 96, rng);
    Matrix b = randomMatrix(96, 96, rng);
    Matrix first = a.matmul(b);
    for (int run = 0; run < 5; ++run)
        expectBitwiseEqual(a.matmul(b), first, "repeated matmul");
}

} // namespace
} // namespace nn
} // namespace geo
