/**
 * @file
 * Unit tests for the Matrix class.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/matrix.hh"
#include "util/random.hh"

namespace geo {
namespace nn {
namespace {

TEST(Matrix, DefaultEmpty)
{
    Matrix m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_TRUE(m.empty());
}

TEST(Matrix, ZeroInitialized)
{
    Matrix m(2, 3);
    for (size_t r = 0; r < 2; ++r)
        for (size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(m.at(r, c), 0.0);
}

TEST(Matrix, FillConstructor)
{
    Matrix m(2, 2, 7.5);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 7.5);
}

TEST(Matrix, FromRows)
{
    Matrix m = Matrix::fromRows({{1, 2}, {3, 4}});
    EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
}

TEST(MatrixDeathTest, FromRowsRagged)
{
    EXPECT_DEATH(Matrix::fromRows({{1, 2}, {3}}), "ragged");
}

#ifdef GEO_CHECK_BOUNDS
TEST(MatrixDeathTest, OutOfBoundsAccess)
{
    Matrix m(2, 2);
    EXPECT_DEATH(m.at(2, 0), "out of");
    EXPECT_DEATH(m.at(0, 2), "out of");
}
#endif

TEST(Matrix, MatmulKnown)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    Matrix c = a.matmul(b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(Matrix, MatmulIdentity)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix eye = Matrix::fromRows({{1, 0}, {0, 1}});
    EXPECT_EQ(a.matmul(eye), a);
    EXPECT_EQ(eye.matmul(a), a);
}

TEST(MatrixDeathTest, MatmulShapeMismatch)
{
    Matrix a(2, 3), b(2, 3);
    EXPECT_DEATH(a.matmul(b), "shape mismatch");
}

TEST(Matrix, TransposeInvolution)
{
    Rng rng(41);
    Matrix m(3, 5);
    m.fillNormal(rng, 1.0);
    EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, TransposeMatmulProperty)
{
    // (AB)^T == B^T A^T
    Rng rng(42);
    Matrix a(3, 4), b(4, 2);
    a.fillNormal(rng, 1.0);
    b.fillNormal(rng, 1.0);
    Matrix lhs = a.matmul(b).transposed();
    Matrix rhs = b.transposed().matmul(a.transposed());
    ASSERT_EQ(lhs.rows(), rhs.rows());
    for (size_t i = 0; i < lhs.size(); ++i)
        EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-12);
}

TEST(Matrix, AddSubtract)
{
    Matrix a = Matrix::fromRows({{1, 2}});
    Matrix b = Matrix::fromRows({{10, 20}});
    EXPECT_DOUBLE_EQ((a + b).at(0, 1), 22.0);
    EXPECT_DOUBLE_EQ((b - a).at(0, 0), 9.0);
}

TEST(Matrix, Hadamard)
{
    Matrix a = Matrix::fromRows({{2, 3}});
    Matrix b = Matrix::fromRows({{4, 5}});
    Matrix c = a.hadamard(b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 8.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 15.0);
}

TEST(Matrix, ScalarMultiply)
{
    Matrix a = Matrix::fromRows({{1, -2}});
    Matrix b = a * 3.0;
    EXPECT_DOUBLE_EQ(b.at(0, 1), -6.0);
}

TEST(Matrix, AddRowBroadcast)
{
    Matrix m = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix bias = Matrix::fromRows({{10, 20}});
    Matrix out = m.addRowBroadcast(bias);
    EXPECT_DOUBLE_EQ(out.at(0, 0), 11.0);
    EXPECT_DOUBLE_EQ(out.at(1, 1), 24.0);
}

TEST(Matrix, ColumnSums)
{
    Matrix m = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix sums = m.columnSums();
    EXPECT_EQ(sums.rows(), 1u);
    EXPECT_DOUBLE_EQ(sums.at(0, 0), 4.0);
    EXPECT_DOUBLE_EQ(sums.at(0, 1), 6.0);
}

TEST(Matrix, RowAndRanges)
{
    Matrix m = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
    EXPECT_DOUBLE_EQ(m.row(1).at(0, 2), 6.0);
    Matrix rows = m.rowRange(1, 3);
    EXPECT_EQ(rows.rows(), 2u);
    EXPECT_DOUBLE_EQ(rows.at(1, 0), 7.0);
    Matrix cols = m.colRange(1, 3);
    EXPECT_EQ(cols.cols(), 2u);
    EXPECT_DOUBLE_EQ(cols.at(2, 0), 8.0);
}

TEST(Matrix, SetBlockRoundTrip)
{
    Matrix m(4, 4);
    Matrix block = Matrix::fromRows({{1, 2}, {3, 4}});
    m.setBlock(1, 2, block);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 1.0);
    EXPECT_DOUBLE_EQ(m.at(2, 3), 4.0);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
    Matrix back = m.rowRange(1, 3).colRange(2, 4);
    EXPECT_EQ(back, block);
}

TEST(MatrixDeathTest, SetBlockOverflow)
{
    Matrix m(2, 2);
    Matrix block(2, 2);
    EXPECT_DEATH(m.setBlock(1, 1, block), "overflow");
}

TEST(Matrix, MapApplies)
{
    Matrix m = Matrix::fromRows({{-1, 4}});
    Matrix out = m.map([](double v) { return v * v; });
    EXPECT_DOUBLE_EQ(out.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(out.at(0, 1), 16.0);
}

TEST(Matrix, NormFrobenius)
{
    Matrix m = Matrix::fromRows({{3, 4}});
    EXPECT_DOUBLE_EQ(m.norm(), 5.0);
}

TEST(Matrix, HasNonFinite)
{
    Matrix m(1, 2);
    EXPECT_FALSE(m.hasNonFinite());
    m.at(0, 1) = std::nan("");
    EXPECT_TRUE(m.hasNonFinite());
    m.at(0, 1) = INFINITY;
    EXPECT_TRUE(m.hasNonFinite());
}

TEST(Matrix, FillHeNormalStddev)
{
    Rng rng(43);
    Matrix m(100, 100);
    m.fillHeNormal(rng, 50);
    double sum = 0.0, sum2 = 0.0;
    for (double v : m.data()) {
        sum += v;
        sum2 += v * v;
    }
    double n = static_cast<double>(m.size());
    double stddev = std::sqrt(sum2 / n - (sum / n) * (sum / n));
    EXPECT_NEAR(stddev, std::sqrt(2.0 / 50.0), 0.01);
}

TEST(Matrix, FillXavierWithinLimit)
{
    Rng rng(44);
    Matrix m(50, 50);
    m.fillXavierUniform(rng, 50, 50);
    double limit = std::sqrt(6.0 / 100.0);
    for (double v : m.data()) {
        EXPECT_GE(v, -limit);
        EXPECT_LE(v, limit);
    }
}

} // namespace
} // namespace nn
} // namespace geo
