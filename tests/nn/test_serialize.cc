/**
 * @file
 * Tests for model weight serialization.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "nn/model_zoo.hh"
#include "nn/serialize.hh"
#include "util/random.hh"

namespace geo {
namespace nn {
namespace {

TEST(Serialize, RoundTripPreservesPredictions)
{
    Rng rng1(91), rng2(92);
    Sequential original = buildModel(1, 6, rng1);
    Sequential restored = buildModel(1, 6, rng2); // different init

    std::stringstream buffer;
    ASSERT_TRUE(saveWeights(original, buffer));
    ASSERT_TRUE(loadWeights(restored, buffer));

    Matrix x(4, 6);
    Rng rng3(93);
    x.fillNormal(rng3, 1.0);
    Matrix y1 = original.predict(x);
    Matrix y2 = restored.predict(x);
    for (size_t i = 0; i < y1.size(); ++i)
        EXPECT_DOUBLE_EQ(y1.data()[i], y2.data()[i]);
}

TEST(Serialize, RecurrentModelRoundTrips)
{
    Rng rng1(94), rng2(95);
    Sequential original = buildModel(12, 6, rng1, 4); // LSTM front
    Sequential restored = buildModel(12, 6, rng2, 4);

    std::stringstream buffer;
    ASSERT_TRUE(saveWeights(original, buffer));
    ASSERT_TRUE(loadWeights(restored, buffer));

    Matrix x(2, original.inputSize());
    Rng rng3(96);
    x.fillNormal(rng3, 1.0);
    Matrix y1 = original.predict(x);
    Matrix y2 = restored.predict(x);
    for (size_t i = 0; i < y1.size(); ++i)
        EXPECT_DOUBLE_EQ(y1.data()[i], y2.data()[i]);
}

TEST(Serialize, TopologyMismatchRejected)
{
    Rng rng(97);
    Sequential model1 = buildModel(1, 6, rng);
    Sequential model4 = buildModel(4, 6, rng);
    std::stringstream buffer;
    ASSERT_TRUE(saveWeights(model1, buffer));
    EXPECT_FALSE(loadWeights(model4, buffer));
}

TEST(Serialize, GarbageRejected)
{
    Rng rng(98);
    Sequential model = buildModel(1, 6, rng);
    std::stringstream buffer("not a checkpoint");
    EXPECT_FALSE(loadWeights(model, buffer));
}

TEST(Serialize, FileRoundTrip)
{
    Rng rng1(99), rng2(100);
    Sequential original = buildModel(4, 6, rng1);
    Sequential restored = buildModel(4, 6, rng2);
    std::string path =
        testing::TempDir() + "/geomancy_serialize_test.weights";
    ASSERT_TRUE(saveWeightsFile(original, path));
    ASSERT_TRUE(loadWeightsFile(restored, path));
    Matrix x(1, 6, 0.5);
    EXPECT_DOUBLE_EQ(original.predict(x).at(0, 0),
                     restored.predict(x).at(0, 0));
    std::remove(path.c_str());
}

TEST(Serialize, AtomicFileWriteLeavesNoResidue)
{
    // saveWeightsFile goes through the temp-file + rename path: after
    // an overwrite the directory must hold exactly the weights file,
    // and the previous contents are fully replaced.
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "geo_serialize_atomic";
    fs::remove_all(dir);
    fs::create_directories(dir);
    std::string path = (dir / "model.weights").string();

    Rng rng1(102), rng2(103), rng3(104);
    Sequential first = buildModel(1, 6, rng1);
    Sequential second = buildModel(1, 6, rng2);
    ASSERT_TRUE(saveWeightsFile(first, path));
    ASSERT_TRUE(saveWeightsFile(second, path)); // overwrite

    size_t entries = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        (void)entry;
        ++entries;
    }
    EXPECT_EQ(entries, 1u); // no .tmp.* files left behind

    Sequential restored = buildModel(1, 6, rng3);
    ASSERT_TRUE(loadWeightsFile(restored, path));
    Matrix x(1, 6, 0.5);
    EXPECT_DOUBLE_EQ(restored.predict(x).at(0, 0),
                     second.predict(x).at(0, 0));
    fs::remove_all(dir);
}

TEST(Serialize, MissingFileFails)
{
    Rng rng(101);
    Sequential model = buildModel(1, 6, rng);
    EXPECT_FALSE(loadWeightsFile(model, "/nonexistent/path.weights"));
}

} // namespace
} // namespace nn
} // namespace geo
