/**
 * @file
 * Unit and parameterized tests for activation functions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hh"

namespace geo {
namespace nn {
namespace {

TEST(Activation, ReluValues)
{
    EXPECT_DOUBLE_EQ(activate(Activation::ReLU, 3.0), 3.0);
    EXPECT_DOUBLE_EQ(activate(Activation::ReLU, -3.0), 0.0);
    EXPECT_DOUBLE_EQ(activate(Activation::ReLU, 0.0), 0.0);
}

TEST(Activation, LinearIdentity)
{
    for (double x : {-5.0, 0.0, 2.5})
        EXPECT_DOUBLE_EQ(activate(Activation::Linear, x), x);
}

TEST(Activation, SigmoidRangeAndCenter)
{
    EXPECT_DOUBLE_EQ(activate(Activation::Sigmoid, 0.0), 0.5);
    EXPECT_GT(activate(Activation::Sigmoid, 10.0), 0.999);
    EXPECT_LT(activate(Activation::Sigmoid, -10.0), 0.001);
}

TEST(Activation, TanhOddFunction)
{
    for (double x : {0.5, 1.0, 2.0})
        EXPECT_DOUBLE_EQ(activate(Activation::Tanh, x),
                         -activate(Activation::Tanh, -x));
}

TEST(Activation, NamesRoundTrip)
{
    for (Activation act : {Activation::Linear, Activation::ReLU,
                           Activation::Sigmoid, Activation::Tanh})
        EXPECT_EQ(activationFromName(activationName(act)), act);
}

TEST(ActivationDeathTest, UnknownName)
{
    EXPECT_DEATH(activationFromName("softmax"), "unknown");
}

TEST(Activation, MatrixApplyMatchesScalar)
{
    Matrix m = Matrix::fromRows({{-2.0, -0.5, 0.0, 0.5, 2.0}});
    for (Activation act : {Activation::Linear, Activation::ReLU,
                           Activation::Sigmoid, Activation::Tanh}) {
        Matrix out = applyActivation(act, m);
        for (size_t c = 0; c < m.cols(); ++c)
            EXPECT_DOUBLE_EQ(out.at(0, c), activate(act, m.at(0, c)));
    }
}

/** Parameterized derivative check against a finite difference. */
class ActivationDerivativeTest : public testing::TestWithParam<Activation>
{
};

TEST_P(ActivationDerivativeTest, MatchesFiniteDifference)
{
    Activation act = GetParam();
    const double eps = 1e-6;
    for (double x : {-2.0, -0.7, 0.3, 1.1, 3.0}) {
        double numeric = (activate(act, x + eps) - activate(act, x - eps)) /
                         (2.0 * eps);
        EXPECT_NEAR(activateDerivative(act, x), numeric, 1e-5)
            << activationName(act) << " at x = " << x;
    }
}

TEST_P(ActivationDerivativeTest, MatrixDerivativeMatchesScalar)
{
    Activation act = GetParam();
    Matrix m = Matrix::fromRows({{-1.5, 0.25, 2.0}});
    Matrix d = activationDerivative(act, m);
    for (size_t c = 0; c < m.cols(); ++c)
        EXPECT_DOUBLE_EQ(d.at(0, c), activateDerivative(act, m.at(0, c)));
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationDerivativeTest,
                         testing::Values(Activation::Linear,
                                         Activation::ReLU,
                                         Activation::Sigmoid,
                                         Activation::Tanh),
                         [](const auto &info) {
                             return activationName(info.param);
                         });

} // namespace
} // namespace nn
} // namespace geo
