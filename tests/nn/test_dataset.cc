/**
 * @file
 * Unit tests for dataset slicing and the 60/20/20 split.
 */

#include <gtest/gtest.h>

#include "nn/dataset.hh"

namespace geo {
namespace nn {
namespace {

Dataset
sequentialDataset(size_t n)
{
    Dataset data;
    data.inputs = Matrix(n, 2);
    data.targets = Matrix(n, 1);
    for (size_t i = 0; i < n; ++i) {
        data.inputs.at(i, 0) = static_cast<double>(i);
        data.inputs.at(i, 1) = static_cast<double>(i) * 10.0;
        data.targets.at(i, 0) = static_cast<double>(i) * 100.0;
    }
    return data;
}

TEST(Dataset, SliceAligned)
{
    Dataset data = sequentialDataset(10);
    Dataset mid = data.slice(3, 6);
    EXPECT_EQ(mid.size(), 3u);
    EXPECT_DOUBLE_EQ(mid.inputs.at(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(mid.targets.at(2, 0), 500.0);
}

TEST(Dataset, EmptyFlag)
{
    Dataset data;
    EXPECT_TRUE(data.empty());
    EXPECT_FALSE(sequentialDataset(1).empty());
}

TEST(ChronologicalSplit, PaperFractions)
{
    Dataset data = sequentialDataset(100);
    DataSplit split = chronologicalSplit(data);
    EXPECT_EQ(split.train.size(), 60u);
    EXPECT_EQ(split.validation.size(), 20u);
    EXPECT_EQ(split.test.size(), 20u);
}

TEST(ChronologicalSplit, PreservesOrderAndDisjoint)
{
    Dataset data = sequentialDataset(50);
    DataSplit split = chronologicalSplit(data);
    // Train ends exactly where validation starts; no overlap.
    double last_train = split.train.inputs.at(split.train.size() - 1, 0);
    double first_val = split.validation.inputs.at(0, 0);
    double last_val =
        split.validation.inputs.at(split.validation.size() - 1, 0);
    double first_test = split.test.inputs.at(0, 0);
    EXPECT_DOUBLE_EQ(first_val, last_train + 1.0);
    EXPECT_DOUBLE_EQ(first_test, last_val + 1.0);
}

TEST(ChronologicalSplit, CustomFractions)
{
    Dataset data = sequentialDataset(10);
    DataSplit split = chronologicalSplit(data, 0.5, 0.3);
    EXPECT_EQ(split.train.size(), 5u);
    EXPECT_EQ(split.validation.size(), 3u);
    EXPECT_EQ(split.test.size(), 2u);
}

TEST(ChronologicalSplit, TotalCoversEverything)
{
    for (size_t n : {7u, 13u, 100u, 101u}) {
        Dataset data = sequentialDataset(n);
        DataSplit split = chronologicalSplit(data);
        EXPECT_EQ(split.train.size() + split.validation.size() +
                      split.test.size(),
                  n);
    }
}

TEST(ChronologicalSplitDeathTest, BadFractions)
{
    Dataset data = sequentialDataset(10);
    EXPECT_DEATH(chronologicalSplit(data, 0.0, 0.2), "fractions");
    EXPECT_DEATH(chronologicalSplit(data, 0.8, 0.2), "fractions");
}

} // namespace
} // namespace nn
} // namespace geo
