/**
 * @file
 * Unit and integration tests for the Sequential model and training.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/dense_layer.hh"
#include "nn/sequential.hh"
#include "util/random.hh"

namespace geo {
namespace nn {
namespace {

Sequential
makeMlp(Rng &rng, size_t in, size_t hidden, Activation hidden_act)
{
    Sequential model;
    model.add(std::make_unique<DenseLayer>(in, hidden, hidden_act, rng));
    model.add(
        std::make_unique<DenseLayer>(hidden, 1, Activation::Linear, rng));
    return model;
}

/** y = 2 x0 - x1 + 0.5, a linear target an MLP must nail. */
Dataset
linearDataset(Rng &rng, size_t n)
{
    Dataset data;
    data.inputs = Matrix(n, 2);
    data.targets = Matrix(n, 1);
    for (size_t i = 0; i < n; ++i) {
        double x0 = rng.uniform(-1.0, 1.0);
        double x1 = rng.uniform(-1.0, 1.0);
        data.inputs.at(i, 0) = x0;
        data.inputs.at(i, 1) = x1;
        data.targets.at(i, 0) = 2.0 * x0 - x1 + 0.5;
    }
    return data;
}

TEST(Sequential, AddChecksWidths)
{
    Rng rng(71);
    Sequential model;
    model.add(std::make_unique<DenseLayer>(2, 4, Activation::Tanh, rng));
    EXPECT_DEATH(model.add(std::make_unique<DenseLayer>(
                     5, 1, Activation::Linear, rng)),
                 "input");
}

TEST(Sequential, SizesAndParameterCount)
{
    Rng rng(72);
    Sequential model = makeMlp(rng, 3, 8, Activation::Tanh);
    EXPECT_EQ(model.inputSize(), 3u);
    EXPECT_EQ(model.outputSize(), 1u);
    EXPECT_EQ(model.layerCount(), 2u);
    EXPECT_EQ(model.parameterCount(), (3u * 8 + 8) + (8u + 1));
}

TEST(Sequential, PredictShape)
{
    Rng rng(73);
    Sequential model = makeMlp(rng, 2, 4, Activation::Tanh);
    Matrix x(5, 2);
    x.fillNormal(rng, 1.0);
    Matrix y = model.predict(x);
    EXPECT_EQ(y.rows(), 5u);
    EXPECT_EQ(y.cols(), 1u);
}

TEST(Sequential, TrainLearnsLinearFunction)
{
    Rng rng(74);
    Sequential model = makeMlp(rng, 2, 16, Activation::Tanh);
    Dataset train = linearDataset(rng, 400);
    Dataset val = linearDataset(rng, 100);

    SgdOptimizer opt(0.05);
    TrainOptions options;
    options.epochs = 150;
    options.batchSize = 32;
    TrainResult result = model.train(train, val, opt, options);

    EXPECT_FALSE(result.diverged);
    ASSERT_FALSE(result.trainLoss.empty());
    EXPECT_LT(result.trainLoss.back(), result.trainLoss.front());
    EXPECT_LT(model.evaluate(val), 0.01);
}

TEST(Sequential, TrainLossDecreasesMonotonicallyOnAverage)
{
    Rng rng(75);
    Sequential model = makeMlp(rng, 2, 8, Activation::Tanh);
    Dataset train = linearDataset(rng, 200);
    SgdOptimizer opt(0.02);
    TrainOptions options;
    options.epochs = 60;
    TrainResult result = model.train(train, {}, opt, options);
    double first_third = 0.0, last_third = 0.0;
    size_t n = result.trainLoss.size();
    for (size_t i = 0; i < n / 3; ++i)
        first_third += result.trainLoss[i];
    for (size_t i = 2 * n / 3; i < n; ++i)
        last_third += result.trainLoss[i];
    EXPECT_LT(last_third, first_third);
}

TEST(Sequential, EarlyStoppingHalts)
{
    Rng rng(76);
    Sequential model = makeMlp(rng, 2, 8, Activation::Tanh);
    Dataset train = linearDataset(rng, 100);
    // Unlearnable validation targets: pure noise, so validation loss
    // plateaus and the patience counter must fire.
    Dataset val = linearDataset(rng, 50);
    for (size_t i = 0; i < val.size(); ++i)
        val.targets.at(i, 0) = rng.uniform(-1.0, 1.0);
    SgdOptimizer opt(0.05);
    TrainOptions options;
    options.epochs = 500;
    options.earlyStopPatience = 5;
    options.earlyStopMinDelta = 1e-6;
    TrainResult result = model.train(train, val, opt, options);
    EXPECT_LT(result.trainLoss.size(), 500u);
}

TEST(Sequential, ShuffledTrainingStillLearns)
{
    Rng rng(77);
    Sequential model = makeMlp(rng, 2, 16, Activation::Tanh);
    Dataset train = linearDataset(rng, 300);
    SgdOptimizer opt(0.05);
    TrainOptions options;
    options.epochs = 100;
    options.shuffle = true;
    options.shuffleSeed = 9;
    TrainResult result = model.train(train, {}, opt, options);
    EXPECT_FALSE(result.diverged);
    EXPECT_LT(model.evaluate(train), 0.01);
}

TEST(Sequential, LooksDivergedOnConstantPredictor)
{
    Rng rng(78);
    Sequential model;
    auto layer =
        std::make_unique<DenseLayer>(2, 1, Activation::Linear, rng);
    // Zero weights + constant bias = constant predictions.
    layer->weights().zero();
    layer->bias().at(0, 0) = 1.0;
    model.add(std::move(layer));

    Dataset probe = linearDataset(rng, 50);
    EXPECT_TRUE(model.looksDiverged(probe));
}

TEST(Sequential, LooksHealthyAfterTraining)
{
    Rng rng(79);
    Sequential model = makeMlp(rng, 2, 8, Activation::Tanh);
    Dataset train = linearDataset(rng, 200);
    SgdOptimizer opt(0.05);
    TrainOptions options;
    options.epochs = 50;
    model.train(train, {}, opt, options);
    EXPECT_FALSE(model.looksDiverged(train));
}

TEST(Sequential, TrainBatchReturnsLoss)
{
    Rng rng(80);
    Sequential model = makeMlp(rng, 2, 4, Activation::Tanh);
    Dataset data = linearDataset(rng, 16);
    SgdOptimizer opt(0.01);
    double loss1 = model.trainBatch(data.inputs, data.targets, opt);
    double loss2 = model.trainBatch(data.inputs, data.targets, opt);
    EXPECT_GT(loss1, 0.0);
    EXPECT_LT(loss2, loss1);
}

TEST(SequentialDeathTest, EmptyModelPanics)
{
    Sequential model;
    EXPECT_DEATH(model.inputSize(), "empty");
}

TEST(SequentialDeathTest, TrainEmptyDataset)
{
    Rng rng(81);
    Sequential model = makeMlp(rng, 2, 4, Activation::Tanh);
    SgdOptimizer opt(0.01);
    EXPECT_DEATH(model.train({}, {}, opt, {}), "empty");
}

TEST(Sequential, DescribeListsLayers)
{
    Rng rng(82);
    Sequential model = makeMlp(rng, 2, 4, Activation::ReLU);
    EXPECT_EQ(model.describe(), "4 (Dense) relu, 1 (Dense) linear");
}

} // namespace
} // namespace nn
} // namespace geo
