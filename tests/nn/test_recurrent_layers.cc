/**
 * @file
 * Behavioral tests for the recurrent layers (shape handling, windowed
 * input semantics, order sensitivity).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/gru_layer.hh"
#include "nn/lstm_layer.hh"
#include "nn/simple_rnn_layer.hh"
#include "util/random.hh"

namespace geo {
namespace nn {
namespace {

/** Factory for the three recurrent layer types. */
std::unique_ptr<Layer>
makeRecurrent(const std::string &kind, size_t features, size_t steps,
              size_t hidden, Rng &rng)
{
    if (kind == "rnn")
        return std::make_unique<SimpleRnnLayer>(features, steps, hidden,
                                                Activation::Tanh, rng);
    if (kind == "lstm")
        return std::make_unique<LstmLayer>(features, steps, hidden,
                                           Activation::Tanh, rng);
    return std::make_unique<GruLayer>(features, steps, hidden,
                                      Activation::Tanh, rng);
}

class RecurrentLayerTest : public testing::TestWithParam<std::string>
{
};

TEST_P(RecurrentLayerTest, ShapesMatchWindowedInput)
{
    Rng rng(61);
    auto layer = makeRecurrent(GetParam(), 3, 5, 7, rng);
    EXPECT_EQ(layer->inputSize(), 15u);
    EXPECT_EQ(layer->outputSize(), 7u);
    Matrix x(4, 15);
    x.fillNormal(rng, 1.0);
    Matrix y = layer->forward(x, false);
    EXPECT_EQ(y.rows(), 4u);
    EXPECT_EQ(y.cols(), 7u);
}

TEST_P(RecurrentLayerTest, OutputDependsOnStepOrder)
{
    Rng rng(62);
    auto layer = makeRecurrent(GetParam(), 2, 3, 4, rng);
    Matrix x(1, 6);
    x.fillNormal(rng, 1.0);
    // Swap the first and last timestep blocks.
    Matrix swapped = x;
    for (size_t c = 0; c < 2; ++c) {
        swapped.at(0, c) = x.at(0, 4 + c);
        swapped.at(0, 4 + c) = x.at(0, c);
    }
    Matrix y1 = layer->forward(x, false);
    Matrix y2 = layer->forward(swapped, false);
    double diff = 0.0;
    for (size_t c = 0; c < y1.cols(); ++c)
        diff += std::fabs(y1.at(0, c) - y2.at(0, c));
    EXPECT_GT(diff, 1e-9) << "recurrence should be order-sensitive";
}

TEST_P(RecurrentLayerTest, LastStepDominatesWithShortWindow)
{
    // With a single timestep the layer reduces to a feed-forward cell:
    // identical inputs at t=0 give identical outputs.
    Rng rng(63);
    auto layer = makeRecurrent(GetParam(), 4, 1, 3, rng);
    Matrix x(2, 4);
    for (size_t c = 0; c < 4; ++c) {
        x.at(0, c) = 0.3 * static_cast<double>(c);
        x.at(1, c) = 0.3 * static_cast<double>(c);
    }
    Matrix y = layer->forward(x, false);
    for (size_t c = 0; c < y.cols(); ++c)
        EXPECT_DOUBLE_EQ(y.at(0, c), y.at(1, c));
}

TEST_P(RecurrentLayerTest, WrongWidthPanics)
{
    Rng rng(64);
    auto layer = makeRecurrent(GetParam(), 3, 4, 2, rng);
    Matrix x(1, 11);
    EXPECT_DEATH(layer->forward(x, false), "input width");
}

TEST_P(RecurrentLayerTest, BackwardWithoutForwardPanics)
{
    Rng rng(65);
    auto layer = makeRecurrent(GetParam(), 2, 2, 2, rng);
    Matrix grad(1, 2);
    EXPECT_DEATH(layer->backward(grad), "without");
}

TEST_P(RecurrentLayerTest, BoundedActivationsStayFinite)
{
    Rng rng(66);
    auto layer = makeRecurrent(GetParam(), 2, 50, 8, rng);
    Matrix x(1, 100);
    x.fillNormal(rng, 3.0);
    Matrix y = layer->forward(x, false);
    EXPECT_FALSE(y.hasNonFinite());
}

INSTANTIATE_TEST_SUITE_P(Kinds, RecurrentLayerTest,
                         testing::Values("rnn", "lstm", "gru"),
                         [](const auto &info) { return info.param; });

TEST(RecurrentLayerDescribe, Names)
{
    Rng rng(67);
    SimpleRnnLayer rnn(2, 3, 6, Activation::ReLU, rng);
    LstmLayer lstm(2, 3, 6, Activation::ReLU, rng);
    GruLayer gru(2, 3, 6, Activation::ReLU, rng);
    EXPECT_EQ(rnn.describe(), "6 (SimpleRNN) relu");
    EXPECT_EQ(lstm.describe(), "6 (LSTM) relu");
    EXPECT_EQ(gru.describe(), "6 (GRU) relu");
    EXPECT_EQ(rnn.typeName(), "simple_rnn");
    EXPECT_EQ(lstm.typeName(), "lstm");
    EXPECT_EQ(gru.typeName(), "gru");
}

} // namespace
} // namespace nn
} // namespace geo
