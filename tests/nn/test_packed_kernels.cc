/**
 * @file
 * Bit-identity tests for the packed register-blocked GEMM paths.
 *
 * test_matrix_parallel.cc covers small and boundary shapes that mostly
 * stay on the plain kernels; the shapes here sit above the measured
 * crossovers in matrix.cc's kernel plan, forcing the B-panel packing
 * and micro-tile code for all three products. The packed kernels may
 * reorganize memory layout and tile traversal, but every (i, j)'s
 * depth index must still ascend with the naive loop's zero-lhs skip,
 * so results are required to be bitwise equal to matmulNaive — not
 * just close.
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "nn/matrix.hh"
#include "util/random.hh"

namespace geo {
namespace nn {
namespace {

Matrix
randomMatrix(size_t rows, size_t cols, Rng &rng)
{
    Matrix m(rows, cols);
    m.fillNormal(rng, 1.0);
    return m;
}

void
expectBitwiseEqual(const Matrix &a, const Matrix &b, const char *what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            ASSERT_EQ(a.at(r, c), b.at(r, c))
                << what << " differs at (" << r << ", " << c << ")";
}

TEST(PackedKernels, MatmulAboveCrossoverMatchesNaive)
{
    Rng rng(2024);
    // All shapes clear the packed-kernel plan for A*B; widths exercise
    // full panels, a narrow tail panel (n % 8 != 0) and row tails
    // (m % 4 != 0).
    const std::vector<std::array<size_t, 3>> shapes = {
        {128, 128, 128}, {130, 128, 121}, {64, 300, 37},
        {17, 256, 260},  {256, 64, 128},  {101, 101, 101},
    };
    for (const auto &[m, k, n] : shapes) {
        Matrix a = randomMatrix(m, k, rng);
        Matrix b = randomMatrix(k, n, rng);
        expectBitwiseEqual(a.matmul(b), a.matmulNaive(b), "packed matmul");
    }
}

TEST(PackedKernels, MatmulTransposedAboveCrossoverMatchesNaive)
{
    Rng rng(2025);
    const std::vector<std::array<size_t, 3>> shapes = {
        {128, 128, 128}, {130, 150, 99}, {64, 400, 41}, {200, 80, 200},
    };
    for (const auto &[m, k, n] : shapes) {
        Matrix a = randomMatrix(m, k, rng);
        Matrix bt = randomMatrix(n, k, rng); // b transposed: n x k
        expectBitwiseEqual(a.matmulTransposed(bt),
                           a.matmulNaive(bt.transposed()),
                           "packed matmulTransposed");
    }
}

TEST(PackedKernels, TransposedMatmulAboveCrossoverMatchesNaive)
{
    Rng rng(2026);
    const std::vector<std::array<size_t, 3>> shapes = {
        {128, 128, 128}, {150, 130, 99}, {400, 64, 41}, {80, 200, 200},
    };
    for (const auto &[k, m, n] : shapes) {
        Matrix at = randomMatrix(k, m, rng); // a transposed: k x m
        Matrix b = randomMatrix(k, n, rng);
        expectBitwiseEqual(at.transposedMatmul(b),
                           at.transposed().matmulNaive(b),
                           "packed transposedMatmul");
    }
}

TEST(PackedKernels, SparseLhsTakesZeroSkipPath)
{
    // ReLU activations hand the backward pass matrices full of exact
    // zeros; the packed kernels must take the same zero-lhs skips as
    // the naive loop (dropping them would change NaN/rounding
    // behaviour, not just speed).
    Rng rng(2027);
    Matrix a = randomMatrix(128, 128, rng);
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            if ((r * 31 + c) % 3 != 0)
                a.at(r, c) = 0.0;
    Matrix b = randomMatrix(128, 128, rng);
    expectBitwiseEqual(a.matmul(b), a.matmulNaive(b), "sparse packed");
    Matrix bt = randomMatrix(128, 128, rng);
    expectBitwiseEqual(a.matmulTransposed(bt),
                       a.matmulNaive(bt.transposed()),
                       "sparse packed ABt");
    expectBitwiseEqual(a.transposedMatmul(b),
                       a.transposed().matmulNaive(b), "sparse packed AtB");
}

TEST(PackedKernels, RandomizedShapesAllProducts)
{
    // Fuzz across the crossover: shapes land on both sides of the
    // kernel plan, so this continuously re-checks that plan selection
    // never changes results.
    Rng rng(424242);
    for (int iter = 0; iter < 25; ++iter) {
        const size_t m = static_cast<size_t>(rng.uniformInt(1, 128));
        const size_t k = static_cast<size_t>(rng.uniformInt(1, 128));
        const size_t n = static_cast<size_t>(rng.uniformInt(1, 128));
        Matrix a = randomMatrix(m, k, rng);
        Matrix b = randomMatrix(k, n, rng);
        expectBitwiseEqual(a.matmul(b), a.matmulNaive(b), "fuzz AB");
        Matrix bt = randomMatrix(n, k, rng);
        expectBitwiseEqual(a.matmulTransposed(bt),
                           a.matmulNaive(bt.transposed()), "fuzz ABt");
        Matrix b2 = randomMatrix(m, n, rng);
        expectBitwiseEqual(a.transposedMatmul(b2),
                           a.transposed().matmulNaive(b2), "fuzz AtB");
    }
}

TEST(PackedKernels, ColumnSumsIntoMatchesColumnSums)
{
    Rng rng(7);
    Matrix a = randomMatrix(33, 21, rng);
    Matrix out(1, 1, 5.0); // wrong shape, stale values
    a.columnSumsInto(out);
    expectBitwiseEqual(out, a.columnSums(), "columnSumsInto");
}

} // namespace
} // namespace nn
} // namespace geo
