/**
 * @file
 * Numerical-robustness tests: the training stack must stay finite
 * under hostile inputs (huge magnitudes, constant columns, long
 * recurrences, aggressive learning rates with clipping).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/lstm_layer.hh"
#include "nn/model_zoo.hh"
#include "trace/normalizer.hh"
#include "util/random.hh"

namespace geo {
namespace nn {
namespace {

TEST(NumericalStability, HugeInputsThroughNormalizerStayFinite)
{
    // Raw throughputs span ~10 orders of magnitude; after min-max
    // normalization the network must behave.
    Rng rng(901);
    Matrix raw(256, 6);
    for (size_t r = 0; r < raw.rows(); ++r)
        for (size_t c = 0; c < raw.cols(); ++c)
            raw.at(r, c) = rng.logNormal(10.0, 5.0);
    trace::MinMaxNormalizer norm;
    norm.fit(raw);
    Matrix inputs = norm.transform(raw);

    Sequential model = buildModel(1, 6, rng);
    Matrix out = model.predict(inputs);
    EXPECT_FALSE(out.hasNonFinite());
}

TEST(NumericalStability, ClippedSgdSurvivesAggressiveLearningRate)
{
    Rng rng(902);
    Sequential model = buildModel(4, 6, rng);
    Matrix inputs(64, 6);
    inputs.fillNormal(rng, 1.0);
    Matrix targets(64, 1, 0.5);
    SgdOptimizer opt(/*lr=*/5.0, /*clip_norm=*/1.0);
    for (int step = 0; step < 50; ++step) {
        double loss = model.trainBatch(inputs, targets, opt);
        ASSERT_TRUE(std::isfinite(loss)) << "step " << step;
    }
}

TEST(NumericalStability, UnclippedAggressiveSgdDegrades)
{
    // The control for the clipping test: without clipping, the same
    // aggressive learning rate either blows up to non-finite values
    // or kills the network (constant predictions) — either way the
    // model is unusable, which is why the engine clips.
    Rng rng(903);
    Sequential model = buildModel(4, 6, rng);
    Matrix inputs(64, 6);
    inputs.fillNormal(rng, 1.0);
    Dataset probe;
    probe.inputs = inputs;
    probe.targets = Matrix(64, 1);
    Rng target_rng(9031);
    for (size_t r = 0; r < 64; ++r)
        probe.targets.at(r, 0) = target_rng.uniform();
    SgdOptimizer opt(/*lr=*/100.0, /*clip_norm=*/0.0);
    bool exploded = false;
    for (int step = 0; step < 100 && !exploded; ++step) {
        exploded = !std::isfinite(
            model.trainBatch(probe.inputs, probe.targets, opt));
    }
    EXPECT_TRUE(exploded || model.looksDiverged(probe));
}

TEST(NumericalStability, LongLstmRecurrenceStaysFinite)
{
    Rng rng(904);
    LstmLayer lstm(2, 200, 8, Activation::Tanh, rng);
    Matrix input(2, 400);
    input.fillNormal(rng, 2.0);
    Matrix out = lstm.forward(input, true);
    EXPECT_FALSE(out.hasNonFinite());
    Matrix grad(2, 8, 1.0);
    Matrix grad_in = lstm.backward(grad);
    EXPECT_FALSE(grad_in.hasNonFinite());
}

TEST(NumericalStability, ConstantColumnsDoNotPoisonTraining)
{
    // fsid is constant in per-mount telemetry; such columns normalize
    // to 0.5 and must not destabilize anything.
    Rng rng(905);
    Matrix raw(128, 6);
    for (size_t r = 0; r < raw.rows(); ++r) {
        for (size_t c = 0; c < 5; ++c)
            raw.at(r, c) = rng.uniform();
        raw.at(r, 5) = 3.0; // constant
    }
    trace::MinMaxNormalizer norm;
    norm.fit(raw);
    Matrix inputs = norm.transform(raw);
    for (size_t r = 0; r < inputs.rows(); ++r)
        EXPECT_DOUBLE_EQ(inputs.at(r, 5), 0.5);

    Dataset data;
    data.inputs = inputs;
    data.targets = Matrix(128, 1, 0.25);
    Sequential model = buildModel(1, 6, rng);
    SgdOptimizer opt(0.05, 5.0);
    TrainOptions options;
    options.epochs = 10;
    TrainResult result = model.train(data, {}, opt, options);
    EXPECT_FALSE(result.diverged);
}

TEST(NumericalStability, ZeroInputBatch)
{
    Rng rng(906);
    Sequential model = buildModel(1, 6, rng);
    Matrix zeros(8, 6);
    Matrix out = model.predict(zeros);
    EXPECT_FALSE(out.hasNonFinite());
}

} // namespace
} // namespace nn
} // namespace geo
