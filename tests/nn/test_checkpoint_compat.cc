/**
 * @file
 * Checkpoint compatibility against pre-refactor golden fixtures.
 *
 * tests/data/golden_drl.state and golden_adam.state were produced by
 * the build that stored Adam moments as per-tensor matrices and ran
 * the allocating training loop (see the generation recipe below).
 * Loading them through the current arena-backed parameter storage and
 * flat-packed optimizer state, then re-saving, must reproduce the
 * files byte for byte — the serialized format is the `geo-ckpt-1`
 * contract and may not drift.
 *
 * Fixture recipe (run against the pre-refactor tree):
 *   golden_drl.state : DrlConfig{epochs=8}; 600 synthetic PerfRecords
 *     from Rng(11) via InterfaceDaemon::receiveBatch; retrain on
 *     buildTrainingBatch({0..5}); saveState.
 *   golden_adam.state: buildModel(1, 6, Rng(7)); 32x6 inputs
 *     fillNormal(rng, 0.4), targets 0.5; AdamOptimizer(0.002);
 *     12 trainBatch steps; saveState.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/drl_engine.hh"
#include "nn/optimizer.hh"
#include "util/state_io.hh"

namespace geo {
namespace nn {
namespace {

std::string
readFixture(const char *name)
{
    const std::string path = std::string(GEO_TEST_DATA_DIR "/") + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(CheckpointCompat, GoldenAdamStateRoundTripsByteExact)
{
    const std::string golden = readFixture("golden_adam.state");
    ASSERT_FALSE(golden.empty());

    AdamOptimizer opt(0.002);
    std::istringstream is(golden);
    util::StateReader r(is);
    opt.loadState(r);
    ASSERT_TRUE(r.ok());

    std::ostringstream os;
    util::StateWriter w(os);
    opt.saveState(w);
    EXPECT_EQ(os.str(), golden)
        << "flat-packed Adam moments must re-serialize the original "
           "per-tensor records unchanged";
}

TEST(CheckpointCompat, GoldenDrlEngineStateRoundTripsByteExact)
{
    const std::string golden = readFixture("golden_drl.state");
    ASSERT_FALSE(golden.empty());

    core::DrlConfig config;
    config.epochs = 8;
    core::DrlEngine engine(config);
    std::istringstream is(golden);
    util::StateReader r(is);
    engine.loadState(r);
    ASSERT_TRUE(r.ok());

    std::ostringstream os;
    util::StateWriter w(os);
    engine.saveState(w);
    EXPECT_EQ(os.str(), golden)
        << "arena-backed parameters must round-trip the pre-refactor "
           "engine state unchanged";
}

} // namespace
} // namespace nn
} // namespace geo
