/**
 * @file
 * Unit tests for the loss functions.
 */

#include <gtest/gtest.h>

#include "nn/loss.hh"

namespace geo {
namespace nn {
namespace {

TEST(MseLoss, ZeroOnPerfectPrediction)
{
    Matrix p = Matrix::fromRows({{1.0, 2.0}});
    EXPECT_DOUBLE_EQ(MseLoss::value(p, p), 0.0);
}

TEST(MseLoss, KnownValue)
{
    Matrix pred = Matrix::fromRows({{1.0}, {3.0}});
    Matrix target = Matrix::fromRows({{0.0}, {0.0}});
    EXPECT_DOUBLE_EQ(MseLoss::value(pred, target), 5.0);
}

TEST(MseLoss, GradientDirection)
{
    Matrix pred = Matrix::fromRows({{2.0}});
    Matrix target = Matrix::fromRows({{1.0}});
    Matrix grad = MseLoss::gradient(pred, target);
    EXPECT_DOUBLE_EQ(grad.at(0, 0), 2.0); // 2 * (2 - 1) / 1
}

TEST(MseLoss, GradientMatchesFiniteDifference)
{
    Matrix pred = Matrix::fromRows({{0.5, -1.5}, {2.0, 0.0}});
    Matrix target = Matrix::fromRows({{1.0, 1.0}, {1.0, 1.0}});
    Matrix grad = MseLoss::gradient(pred, target);
    const double eps = 1e-6;
    for (size_t i = 0; i < pred.size(); ++i) {
        Matrix up = pred, down = pred;
        up.data()[i] += eps;
        down.data()[i] -= eps;
        double numeric = (MseLoss::value(up, target) -
                          MseLoss::value(down, target)) /
                         (2.0 * eps);
        EXPECT_NEAR(grad.data()[i], numeric, 1e-6);
    }
}

TEST(MseLossDeathTest, ShapeMismatch)
{
    Matrix a(2, 1), b(1, 1);
    EXPECT_DEATH(MseLoss::value(a, b), "shape mismatch");
}

TEST(MseLossDeathTest, EmptyBatch)
{
    Matrix a, b;
    EXPECT_DEATH(MseLoss::value(a, b), "empty");
}

TEST(MaeLoss, KnownValue)
{
    Matrix pred = Matrix::fromRows({{2.0}, {-1.0}});
    Matrix target = Matrix::fromRows({{0.0}, {0.0}});
    EXPECT_DOUBLE_EQ(MaeLoss::value(pred, target), 1.5);
}

} // namespace
} // namespace nn
} // namespace geo
