/**
 * @file
 * Unit tests for the SGD and Adam optimizers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/optimizer.hh"
#include "util/state_io.hh"

namespace geo {
namespace nn {
namespace {

TEST(Sgd, BasicStep)
{
    Matrix param = Matrix::fromRows({{1.0, 2.0}});
    Matrix grad = Matrix::fromRows({{0.5, -1.0}});
    SgdOptimizer opt(0.1);
    opt.step({&param}, {&grad});
    EXPECT_DOUBLE_EQ(param.at(0, 0), 0.95);
    EXPECT_DOUBLE_EQ(param.at(0, 1), 2.1);
}

TEST(Sgd, ClippingScalesLargeGradients)
{
    Matrix param(1, 1);
    Matrix grad = Matrix::fromRows({{100.0}});
    SgdOptimizer opt(1.0, /*clip_norm=*/1.0);
    opt.step({&param}, {&grad});
    // Gradient scaled down to norm 1 -> step of exactly -1.
    EXPECT_NEAR(param.at(0, 0), -1.0, 1e-12);
}

TEST(Sgd, ClippingLeavesSmallGradientsAlone)
{
    Matrix param(1, 1);
    Matrix grad = Matrix::fromRows({{0.5}});
    SgdOptimizer opt(1.0, /*clip_norm=*/10.0);
    opt.step({&param}, {&grad});
    EXPECT_DOUBLE_EQ(param.at(0, 0), -0.5);
}

TEST(Sgd, GlobalNormAcrossTensors)
{
    Matrix p1(1, 1), p2(1, 1);
    Matrix g1 = Matrix::fromRows({{3.0}});
    Matrix g2 = Matrix::fromRows({{4.0}});
    SgdOptimizer opt(1.0, /*clip_norm=*/5.0); // norm is exactly 5
    opt.step({&p1, &p2}, {&g1, &g2});
    EXPECT_NEAR(p1.at(0, 0), -3.0, 1e-12);
    EXPECT_NEAR(p2.at(0, 0), -4.0, 1e-12);
}

TEST(SgdDeathTest, MismatchedLists)
{
    Matrix p(1, 1), g(1, 1);
    SgdOptimizer opt(0.1);
    EXPECT_DEATH(opt.step({&p}, {}), "params");
}

TEST(Sgd, ConvergesOnQuadratic)
{
    // Minimize (x - 3)^2 by following its gradient.
    Matrix x(1, 1);
    SgdOptimizer opt(0.1);
    for (int i = 0; i < 200; ++i) {
        Matrix grad = Matrix::fromRows({{2.0 * (x.at(0, 0) - 3.0)}});
        opt.step({&x}, {&grad});
    }
    EXPECT_NEAR(x.at(0, 0), 3.0, 1e-6);
}

TEST(Adam, ConvergesOnQuadratic)
{
    Matrix x(1, 1);
    AdamOptimizer opt(0.1);
    for (int i = 0; i < 500; ++i) {
        Matrix grad = Matrix::fromRows({{2.0 * (x.at(0, 0) - 3.0)}});
        opt.step({&x}, {&grad});
    }
    EXPECT_NEAR(x.at(0, 0), 3.0, 1e-3);
}

TEST(Adam, FirstStepBoundedByLearningRate)
{
    Matrix x(1, 1);
    Matrix grad = Matrix::fromRows({{1000.0}});
    AdamOptimizer opt(0.01);
    opt.step({&x}, {&grad});
    // Adam's bias-corrected first step is ~lr regardless of magnitude.
    EXPECT_NEAR(x.at(0, 0), -0.01, 1e-6);
}

TEST(Adam, StatefulMomentumAcrossSteps)
{
    Matrix x(1, 1);
    AdamOptimizer opt(0.01);
    Matrix grad = Matrix::fromRows({{1.0}});
    opt.step({&x}, {&grad});
    double after_one = x.at(0, 0);
    opt.step({&x}, {&grad});
    EXPECT_LT(x.at(0, 0), after_one); // keeps moving in same direction
}

TEST(AdamDeathTest, ParameterListChanged)
{
    Matrix p1(1, 1), p2(1, 1), g(1, 1);
    AdamOptimizer opt(0.01);
    opt.step({&p1}, {&g});
    EXPECT_DEATH(opt.step({&p1, &p2}, {&g, &g}), "changed size");
}

TEST(Adam, StateRoundTripContinuesIdentically)
{
    // Two optimizers take the same first step; one is then checkpointed
    // into the other, and both must evolve identically afterwards —
    // moments, step counter and all.
    Matrix x1(1, 2), x2(1, 2);
    AdamOptimizer original(0.05), restored(0.05);
    Matrix grad = Matrix::fromRows({{1.0, -2.0}});
    original.step({&x1}, {&grad});
    original.step({&x1}, {&grad});

    std::ostringstream os;
    util::StateWriter w(os);
    original.saveState(w);

    restored.step({&x2}, {&grad}); // out-of-sync state, overwritten
    x2 = x1;
    std::istringstream is(os.str());
    util::StateReader r(is);
    restored.loadState(r);
    ASSERT_TRUE(r.ok());

    for (int i = 0; i < 10; ++i) {
        Matrix g = Matrix::fromRows(
            {{2.0 * x1.at(0, 0), 2.0 * x1.at(0, 1) + 1.0}});
        original.step({&x1}, {&g});
        restored.step({&x2}, {&g});
        ASSERT_EQ(x1.at(0, 0), x2.at(0, 0)) << "step " << i;
        ASSERT_EQ(x1.at(0, 1), x2.at(0, 1)) << "step " << i;
    }
}

TEST(Sgd, StateRoundTripIsNoOp)
{
    // SGD is stateless: the base save/load must round-trip cleanly so
    // engine checkpoints stay format-stable across optimizer choices.
    SgdOptimizer opt(0.1);
    std::ostringstream os;
    util::StateWriter w(os);
    opt.saveState(w);
    std::istringstream is(os.str());
    util::StateReader r(is);
    opt.loadState(r);
    EXPECT_TRUE(r.ok());
}

TEST(Optimizer, LearningRateAccessors)
{
    SgdOptimizer opt(0.05);
    EXPECT_DOUBLE_EQ(opt.learningRate(), 0.05);
    opt.setLearningRate(0.1);
    EXPECT_DOUBLE_EQ(opt.learningRate(), 0.1);
    EXPECT_EQ(opt.name(), "sgd");
    EXPECT_EQ(AdamOptimizer().name(), "adam");
}

} // namespace
} // namespace nn
} // namespace geo
