/**
 * @file
 * Tests for the 23-architecture model zoo of Table I.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/model_zoo.hh"
#include "util/random.hh"

namespace geo {
namespace nn {
namespace {

TEST(ModelZoo, SpecCount)
{
    EXPECT_EQ(allModelSpecs(6).size(), 23u);
}

TEST(ModelZoo, Model1MatchesPaper)
{
    ModelSpec spec = modelSpec(1, 6);
    EXPECT_EQ(spec.components,
              "96 (Dense) ReLU, 48 (Dense) ReLU, 24 (Dense) ReLU, "
              "1 (Dense) Linear");
    EXPECT_FALSE(spec.recurrent);
}

TEST(ModelZoo, Model18MatchesPaper)
{
    ModelSpec spec = modelSpec(18, 6);
    EXPECT_EQ(spec.components,
              "6 (SimpleRNN) ReLU, 24 (Dense) ReLU, 6 (Dense) ReLU, "
              "1 (Dense) Linear");
    EXPECT_TRUE(spec.recurrent);
}

TEST(ModelZoo, RecurrentFlagsMatchTable)
{
    for (int number = 1; number <= 11; ++number)
        EXPECT_FALSE(modelSpec(number, 6).recurrent) << number;
    for (int number = 12; number <= 23; ++number)
        EXPECT_TRUE(modelSpec(number, 6).recurrent) << number;
}

TEST(ModelZooDeathTest, OutOfRange)
{
    EXPECT_DEATH(modelSpec(0, 6), "out of");
    EXPECT_DEATH(modelSpec(24, 6), "out of");
}

TEST(ModelZoo, InputWidths)
{
    EXPECT_EQ(modelInputWidth(1, 6), 6u);
    EXPECT_EQ(modelInputWidth(12, 6, 8), 48u);
    EXPECT_EQ(modelInputWidth(14, 13, 4), 52u);
}

/** Parameterized sweep: every zoo model builds and runs forward. */
class ModelZooBuildTest : public testing::TestWithParam<int>
{
};

TEST_P(ModelZooBuildTest, BuildsAndPredicts)
{
    int number = GetParam();
    Rng rng(100 + static_cast<uint64_t>(number));
    const size_t z = 6;
    const size_t steps = 4;
    Sequential model = buildModel(number, z, rng, steps);
    EXPECT_EQ(model.outputSize(), 1u);
    EXPECT_EQ(model.inputSize(), modelInputWidth(number, z, steps));

    Matrix x(3, model.inputSize());
    x.fillNormal(rng, 0.5);
    Matrix y = model.predict(x);
    EXPECT_EQ(y.rows(), 3u);
    EXPECT_EQ(y.cols(), 1u);
    EXPECT_FALSE(y.hasNonFinite());
}

TEST_P(ModelZooBuildTest, TrainableOneStep)
{
    int number = GetParam();
    Rng rng(200 + static_cast<uint64_t>(number));
    Sequential model = buildModel(number, 6, rng, 4);
    Matrix x(8, model.inputSize());
    x.fillNormal(rng, 0.5);
    Matrix t(8, 1, 0.5);
    SgdOptimizer opt(0.001, 1.0);
    double loss = model.trainBatch(x, t, opt);
    EXPECT_TRUE(std::isfinite(loss));
}

INSTANTIATE_TEST_SUITE_P(All23, ModelZooBuildTest, testing::Range(1, 24));

TEST(ModelZoo, DifferentZScalesWidth)
{
    ModelSpec z6 = modelSpec(1, 6);
    ModelSpec z13 = modelSpec(1, 13);
    EXPECT_NE(z6.components, z13.components);
    EXPECT_NE(z13.components.find("208 (Dense)"), std::string::npos);
}

TEST(ModelZoo, AmbiguousPairsDifferInDepth)
{
    // Table I prints 8/9 and 10/11 identically; our resolution gives
    // the lower-numbered model the deeper stack (see DESIGN.md).
    Rng rng(300);
    Sequential m8 = buildModel(8, 6, rng);
    Sequential m9 = buildModel(9, 6, rng);
    Sequential m10 = buildModel(10, 6, rng);
    Sequential m11 = buildModel(11, 6, rng);
    EXPECT_GT(m8.layerCount(), m9.layerCount());
    EXPECT_GT(m10.layerCount(), m11.layerCount());
}

} // namespace
} // namespace nn
} // namespace geo
