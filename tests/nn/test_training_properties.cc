/**
 * @file
 * Property-style sweeps over the model zoo: every non-divergent
 * architecture must be able to fit a learnable synthetic mapping, and
 * training must respect basic invariants (finite losses, parameter
 * movement, reproducibility under fixed seeds).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/model_zoo.hh"
#include "util/random.hh"

namespace geo {
namespace nn {
namespace {

/** Smooth learnable target over Z = 6 inputs in [0,1]. */
Dataset
syntheticDataset(Rng &rng, size_t n, size_t width)
{
    Dataset data;
    data.inputs = Matrix(n, width);
    data.targets = Matrix(n, 1);
    for (size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (size_t c = 0; c < width; ++c) {
            double v = rng.uniform();
            data.inputs.at(i, c) = v;
            acc += (c % 2 ? -0.5 : 1.0) * v;
        }
        data.targets.at(i, 0) =
            0.5 + 0.3 * std::sin(acc) + 0.1 * acc / static_cast<double>(width);
    }
    return data;
}

class ZooTrainingTest : public testing::TestWithParam<int>
{
};

TEST_P(ZooTrainingTest, LossDropsOnLearnableTarget)
{
    int number = GetParam();
    Rng rng(4000 + static_cast<uint64_t>(number));
    Sequential model = buildModel(number, 6, rng, 4);
    Dataset data = syntheticDataset(rng, 400, model.inputSize());

    SgdOptimizer opt(0.02, 2.0);
    TrainOptions options;
    options.epochs = 40;
    options.shuffle = true;
    TrainResult result = model.train(data, {}, opt, options);
    if (result.diverged || model.looksDiverged(data)) {
        // Collapsed all-ReLU stacks are a real phenomenon — they are
        // the paper's "Diverged" Table II rows — not a test failure.
        GTEST_SKIP() << "architecture diverged (allowed, as in Table II)";
    }
    ASSERT_GE(result.trainLoss.size(), 2u);
    EXPECT_LT(result.trainLoss.back(), result.trainLoss.front())
        << "model " << number << " failed to reduce training loss";
    for (double loss : result.trainLoss)
        EXPECT_TRUE(std::isfinite(loss));
}

TEST_P(ZooTrainingTest, TrainingMovesParameters)
{
    int number = GetParam();
    Rng rng(5000 + static_cast<uint64_t>(number));
    Sequential model = buildModel(number, 6, rng, 4);
    Dataset data = syntheticDataset(rng, 64, model.inputSize());

    std::vector<double> before;
    for (Matrix *p : model.parameters())
        for (double v : p->data())
            before.push_back(v);

    SgdOptimizer opt(0.01, 2.0);
    model.trainBatch(data.inputs, data.targets, opt);

    double delta = 0.0;
    size_t index = 0;
    for (Matrix *p : model.parameters())
        for (double v : p->data())
            delta += std::fabs(v - before[index++]);
    if (delta == 0.0 && model.looksDiverged(data)) {
        // A dead all-ReLU network legitimately has zero gradient.
        GTEST_SKIP() << "dead ReLU stack (no gradient to apply)";
    }
    EXPECT_GT(delta, 0.0) << "no parameter moved for model " << number;
}

TEST_P(ZooTrainingTest, DeterministicTrainingUnderFixedSeeds)
{
    int number = GetParam();
    auto train_once = [number]() {
        Rng rng(6000 + static_cast<uint64_t>(number));
        Sequential model = buildModel(number, 6, rng, 4);
        Rng data_rng(77);
        Dataset data = syntheticDataset(data_rng, 128, model.inputSize());
        SgdOptimizer opt(0.01, 2.0);
        TrainOptions options;
        options.epochs = 5;
        model.train(data, {}, opt, options);
        return model.predict(data.inputs.rowRange(0, 4));
    };
    Matrix a = train_once();
    Matrix b = train_once();
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_DOUBLE_EQ(a.data()[i], b.data()[i]);
}

INSTANTIATE_TEST_SUITE_P(All23, ZooTrainingTest, testing::Range(1, 24));

TEST(TrainingProperties, SgdBeatsAdamOnThisProblem)
{
    // The paper reports plain SGD outperformed Adam on its throughput
    // regression; verify the harness can reproduce a comparison (no
    // strict assertion on the winner — just both train sanely).
    Rng rng(7000);
    Dataset data = syntheticDataset(rng, 400, 6);
    auto final_loss = [&](Optimizer &opt) {
        Rng model_rng(7001);
        Sequential model = buildModel(1, 6, model_rng);
        TrainOptions options;
        options.epochs = 30;
        TrainResult result = model.train(data, {}, opt, options);
        return result.trainLoss.back();
    };
    SgdOptimizer sgd(0.05);
    AdamOptimizer adam(0.001);
    double sgd_loss = final_loss(sgd);
    double adam_loss = final_loss(adam);
    EXPECT_TRUE(std::isfinite(sgd_loss));
    EXPECT_TRUE(std::isfinite(adam_loss));
}

} // namespace
} // namespace nn
} // namespace geo
