/**
 * @file
 * Numerical gradient checks for every layer type: the central
 * correctness property of the from-scratch backpropagation.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "gradcheck.hh"
#include "nn/dense_layer.hh"
#include "nn/gru_layer.hh"
#include "nn/lstm_layer.hh"
#include "nn/simple_rnn_layer.hh"

namespace geo {
namespace nn {
namespace {

struct LayerCase
{
    std::string name;
    std::function<std::unique_ptr<Layer>(Rng &)> build;
    size_t inputWidth;
};

class LayerGradCheck : public testing::TestWithParam<LayerCase>
{
};

TEST_P(LayerGradCheck, AnalyticMatchesNumeric)
{
    const LayerCase &layer_case = GetParam();
    Rng rng(1001);
    std::unique_ptr<Layer> layer = layer_case.build(rng);
    ASSERT_EQ(layer->inputSize(), layer_case.inputWidth);

    Matrix input(3, layer_case.inputWidth);
    input.fillNormal(rng, 1.0);
    testutil::checkGradients(*layer, input, 555);
}

TEST_P(LayerGradCheck, GradientsAccumulateAcrossBackwards)
{
    const LayerCase &layer_case = GetParam();
    Rng rng(1002);
    std::unique_ptr<Layer> layer = layer_case.build(rng);

    Matrix input(2, layer_case.inputWidth);
    input.fillNormal(rng, 1.0);
    Matrix out = layer->forward(input, true);
    Matrix grad(out.rows(), out.cols(), 1.0);

    layer->zeroGrad();
    layer->backward(grad);
    std::vector<double> once;
    for (Matrix *g : layer->gradients())
        for (double v : g->data())
            once.push_back(v);

    layer->zeroGrad();
    layer->forward(input, true);
    layer->backward(grad);
    layer->forward(input, true);
    layer->backward(grad);
    size_t index = 0;
    for (Matrix *g : layer->gradients())
        for (double v : g->data())
            EXPECT_NEAR(v, 2.0 * once[index++], 1e-9);
}

TEST_P(LayerGradCheck, ZeroGradClears)
{
    const LayerCase &layer_case = GetParam();
    Rng rng(1003);
    std::unique_ptr<Layer> layer = layer_case.build(rng);

    Matrix input(1, layer_case.inputWidth);
    input.fillNormal(rng, 1.0);
    Matrix out = layer->forward(input, true);
    layer->backward(Matrix(out.rows(), out.cols(), 1.0));
    layer->zeroGrad();
    for (Matrix *g : layer->gradients())
        for (double v : g->data())
            EXPECT_DOUBLE_EQ(v, 0.0);
}

std::vector<LayerCase>
layerCases()
{
    // Smooth activations where possible: ReLU kinks can foil finite
    // differences, so ReLU coverage uses a dedicated dense case whose
    // seed keeps pre-activations away from zero.
    return {
        {"dense_tanh",
         [](Rng &rng) {
             return std::make_unique<DenseLayer>(4, 6, Activation::Tanh,
                                                 rng);
         },
         4},
        {"dense_linear",
         [](Rng &rng) {
             return std::make_unique<DenseLayer>(5, 1, Activation::Linear,
                                                 rng);
         },
         5},
        {"dense_sigmoid",
         [](Rng &rng) {
             return std::make_unique<DenseLayer>(3, 3, Activation::Sigmoid,
                                                 rng);
         },
         3},
        {"dense_relu",
         [](Rng &rng) {
             return std::make_unique<DenseLayer>(4, 8, Activation::ReLU,
                                                 rng);
         },
         4},
        {"simple_rnn_tanh",
         [](Rng &rng) {
             return std::make_unique<SimpleRnnLayer>(3, 4, 5,
                                                     Activation::Tanh, rng);
         },
         12},
        {"lstm_tanh",
         [](Rng &rng) {
             return std::make_unique<LstmLayer>(3, 4, 4, Activation::Tanh,
                                                rng);
         },
         12},
        {"gru_tanh",
         [](Rng &rng) {
             return std::make_unique<GruLayer>(3, 4, 4, Activation::Tanh,
                                               rng);
         },
         12},
        {"lstm_single_step",
         [](Rng &rng) {
             return std::make_unique<LstmLayer>(4, 1, 3, Activation::Tanh,
                                                rng);
         },
         4},
        {"gru_single_step",
         [](Rng &rng) {
             return std::make_unique<GruLayer>(4, 1, 3, Activation::Tanh,
                                               rng);
         },
         4},
    };
}

INSTANTIATE_TEST_SUITE_P(AllLayers, LayerGradCheck,
                         testing::ValuesIn(layerCases()),
                         [](const auto &info) { return info.param.name; });

} // namespace
} // namespace nn
} // namespace geo
