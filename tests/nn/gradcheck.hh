/**
 * @file
 * Shared numerical gradient-check helper for layer tests.
 *
 * Defines the scalar loss L = sum(W_out . forward(x)) for a fixed
 * random weighting W_out, computes dL/dparam and dL/dinput by central
 * finite differences, and compares against the layer's backward pass.
 */

#ifndef GEO_TESTS_NN_GRADCHECK_HH
#define GEO_TESTS_NN_GRADCHECK_HH

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layer.hh"
#include "util/random.hh"

namespace geo {
namespace nn {
namespace testutil {

/** Weighted-sum loss of the layer output (fixed weights). */
inline double
lossOf(Layer &layer, const Matrix &input, const Matrix &weights)
{
    Matrix out = layer.forward(input, /*training=*/false);
    double loss = 0.0;
    for (size_t i = 0; i < out.size(); ++i)
        loss += out.data()[i] * weights.data()[i];
    return loss;
}

/**
 * Run a full gradient check of `layer` on `input`.
 *
 * @param tolerance max |analytic - numeric| relative to scale.
 */
inline void
checkGradients(Layer &layer, const Matrix &input, uint64_t seed,
               double tolerance = 2e-5)
{
    Matrix probe = layer.forward(input, /*training=*/true);
    Matrix weights(probe.rows(), probe.cols());
    Rng rng(seed);
    weights.fillNormal(rng, 1.0);

    layer.zeroGrad();
    layer.forward(input, /*training=*/true);
    Matrix grad_input = layer.backward(weights);

    const double eps = 1e-6;

    // Parameter gradients.
    std::vector<Matrix *> params = layer.parameters();
    std::vector<Matrix *> grads = layer.gradients();
    ASSERT_EQ(params.size(), grads.size());
    for (size_t p = 0; p < params.size(); ++p) {
        Matrix &param = *params[p];
        const Matrix &grad = *grads[p];
        ASSERT_EQ(param.rows(), grad.rows());
        ASSERT_EQ(param.cols(), grad.cols());
        for (size_t i = 0; i < param.size(); ++i) {
            double saved = param.data()[i];
            param.data()[i] = saved + eps;
            double up = lossOf(layer, input, weights);
            param.data()[i] = saved - eps;
            double down = lossOf(layer, input, weights);
            param.data()[i] = saved;
            double numeric = (up - down) / (2.0 * eps);
            double scale =
                std::max({1.0, std::fabs(numeric),
                          std::fabs(grad.data()[i])});
            EXPECT_NEAR(grad.data()[i] / scale, numeric / scale, tolerance)
                << "param tensor " << p << " element " << i;
        }
    }

    // Input gradients.
    Matrix x = input;
    for (size_t i = 0; i < x.size(); ++i) {
        double saved = x.data()[i];
        x.data()[i] = saved + eps;
        double up = lossOf(layer, x, weights);
        x.data()[i] = saved - eps;
        double down = lossOf(layer, x, weights);
        x.data()[i] = saved;
        double numeric = (up - down) / (2.0 * eps);
        double scale = std::max(
            {1.0, std::fabs(numeric), std::fabs(grad_input.data()[i])});
        EXPECT_NEAR(grad_input.data()[i] / scale, numeric / scale,
                    tolerance)
            << "input element " << i;
    }
}

} // namespace testutil
} // namespace nn
} // namespace geo

#endif // GEO_TESTS_NN_GRADCHECK_HH
