/**
 * @file
 * Allocation regression tests for the training hot path.
 *
 * Matrix counts every element-buffer acquisition (construction,
 * copies that regrow, reshape growth). The first training epoch may
 * size the Sequential scratch arena, the layer caches, the optimizer
 * moments and the kernel pack buffers — but epochs 2..N must reuse
 * all of it: the counter has to stay exactly flat. A regression here
 * means someone reintroduced a per-batch temporary into
 * forward/backward/step.
 */

#include <gtest/gtest.h>

#include "nn/dataset.hh"
#include "nn/model_zoo.hh"
#include "nn/optimizer.hh"
#include "nn/sequential.hh"
#include "util/random.hh"

namespace geo {
namespace nn {
namespace {

Dataset
syntheticData(size_t examples, size_t features, Rng &rng)
{
    Dataset data;
    data.inputs = Matrix(examples, features);
    data.inputs.fillNormal(rng, 0.5);
    data.targets = Matrix(examples, 1);
    data.targets.fillNormal(rng, 1.0);
    return data;
}

TEST(AllocRegression, SteadyStateTrainEpochsAllocateNothing)
{
    Rng rng(17);
    Sequential model = buildModel(1, 6, rng); // paper's winning stack
    SgdOptimizer opt(0.05, 5.0);              // DrlEngine's configuration
    Dataset train = syntheticData(192, model.inputSize(), rng);
    Dataset validation = syntheticData(48, model.inputSize(), rng);

    TrainOptions options;
    options.epochs = 1;
    options.batchSize = 32;
    // Epoch 1: sizes the arena, layer scratch and pack buffers.
    model.train(train, validation, opt, options);

    const uint64_t before = Matrix::allocationCount();
    options.epochs = 4;
    TrainResult result = model.train(train, validation, opt, options);
    const uint64_t after = Matrix::allocationCount();

    EXPECT_FALSE(result.diverged);
    EXPECT_EQ(after - before, 0u)
        << "steady-state epochs must not acquire Matrix buffers";
}

TEST(AllocRegression, SteadyStateAdamStepsAllocateNothing)
{
    Rng rng(29);
    Sequential model = buildModel(1, 6, rng);
    AdamOptimizer opt(0.002);
    Matrix inputs(32, model.inputSize());
    inputs.fillNormal(rng, 0.4);
    Matrix targets(32, 1, 0.5);

    // First step sizes everything, including Adam's flat moments.
    model.trainBatch(inputs, targets, opt);

    const uint64_t before = Matrix::allocationCount();
    for (int step = 0; step < 8; ++step)
        model.trainBatch(inputs, targets, opt);
    const uint64_t after = Matrix::allocationCount();

    EXPECT_EQ(after - before, 0u)
        << "steady-state Adam steps must not acquire Matrix buffers";
}

TEST(AllocRegression, PredictIntoReusesOutputBuffer)
{
    Rng rng(31);
    Sequential model = buildModel(1, 6, rng);
    Matrix probe(16, model.inputSize());
    probe.fillNormal(rng, 0.3);

    Matrix out;
    model.predictInto(probe, out); // sizes arena + out

    const uint64_t before = Matrix::allocationCount();
    for (int i = 0; i < 5; ++i)
        model.predictInto(probe, out);
    const uint64_t after = Matrix::allocationCount();

    EXPECT_EQ(after - before, 0u)
        << "repeated predictInto must not acquire Matrix buffers";
}

TEST(AllocRegression, CounterSeesConstructionAndGrowth)
{
    const uint64_t base = Matrix::allocationCount();
    Matrix a(4, 4);
    EXPECT_EQ(Matrix::allocationCount() - base, 1u);
    Matrix b = a; // copy acquires
    EXPECT_EQ(Matrix::allocationCount() - base, 2u);
    b.reshape(2, 2); // shrink reuses capacity
    EXPECT_EQ(Matrix::allocationCount() - base, 2u);
    b.reshape(8, 8); // growth acquires
    EXPECT_EQ(Matrix::allocationCount() - base, 3u);
    Matrix c = std::move(a); // move transfers, no acquisition
    EXPECT_EQ(Matrix::allocationCount() - base, 3u);
    (void)c;
}

} // namespace
} // namespace nn
} // namespace geo
