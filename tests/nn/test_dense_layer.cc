/**
 * @file
 * Unit tests for the dense layer.
 */

#include <gtest/gtest.h>

#include "nn/dense_layer.hh"
#include "util/random.hh"

namespace geo {
namespace nn {
namespace {

TEST(DenseLayer, ShapesAndDescribe)
{
    Rng rng(51);
    DenseLayer layer(6, 96, Activation::ReLU, rng);
    EXPECT_EQ(layer.inputSize(), 6u);
    EXPECT_EQ(layer.outputSize(), 96u);
    EXPECT_EQ(layer.describe(), "96 (Dense) relu");
    EXPECT_EQ(layer.typeName(), "dense");
    EXPECT_EQ(layer.parameterCount(), 6u * 96u + 96u);
}

TEST(DenseLayer, ForwardComputesAffineThenActivation)
{
    Rng rng(52);
    DenseLayer layer(2, 1, Activation::Linear, rng);
    // Overwrite weights for a known computation: y = 2a + 3b + 1.
    layer.weights().at(0, 0) = 2.0;
    layer.weights().at(1, 0) = 3.0;
    layer.bias().at(0, 0) = 1.0;
    Matrix x = Matrix::fromRows({{10.0, 100.0}});
    Matrix y = layer.forward(x, false);
    EXPECT_DOUBLE_EQ(y.at(0, 0), 321.0);
}

TEST(DenseLayer, ReluClampsNegative)
{
    Rng rng(53);
    DenseLayer layer(1, 1, Activation::ReLU, rng);
    layer.weights().at(0, 0) = 1.0;
    layer.bias().at(0, 0) = 0.0;
    Matrix neg = Matrix::fromRows({{-5.0}});
    EXPECT_DOUBLE_EQ(layer.forward(neg, false).at(0, 0), 0.0);
}

TEST(DenseLayer, BatchRowsIndependent)
{
    Rng rng(54);
    DenseLayer layer(3, 4, Activation::Tanh, rng);
    Matrix x(2, 3);
    x.fillNormal(rng, 1.0);
    Matrix both = layer.forward(x, false);
    Matrix first = layer.forward(x.rowRange(0, 1), false);
    for (size_t c = 0; c < 4; ++c)
        EXPECT_DOUBLE_EQ(both.at(0, c), first.at(0, c));
}

TEST(DenseLayerDeathTest, WrongInputWidth)
{
    Rng rng(55);
    DenseLayer layer(3, 2, Activation::Linear, rng);
    Matrix x(1, 4);
    EXPECT_DEATH(layer.forward(x, false), "input width");
}

TEST(DenseLayerDeathTest, BackwardWithoutForward)
{
    Rng rng(56);
    DenseLayer layer(3, 2, Activation::Linear, rng);
    Matrix grad(1, 2);
    EXPECT_DEATH(layer.backward(grad), "without");
}

TEST(DenseLayerDeathTest, ZeroDimension)
{
    Rng rng(57);
    EXPECT_DEATH(DenseLayer(0, 2, Activation::Linear, rng), "zero");
}

TEST(DenseLayer, DeterministicInitWithSameSeed)
{
    Rng rng1(58), rng2(58);
    DenseLayer a(4, 4, Activation::ReLU, rng1);
    DenseLayer b(4, 4, Activation::ReLU, rng2);
    EXPECT_EQ(a.weights(), b.weights());
}

} // namespace
} // namespace nn
} // namespace geo
