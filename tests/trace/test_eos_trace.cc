/**
 * @file
 * Tests for the synthetic EOS trace generator: shape, determinism, and
 * the correlation structure that Fig. 4 depends on.
 */

#include <gtest/gtest.h>

#include "trace/eos_trace_gen.hh"
#include "trace/feature_select.hh"
#include "util/stats.hh"

namespace geo {
namespace trace {
namespace {

TEST(EosTraceGenerator, GeneratesRequestedCount)
{
    EosTraceGenerator gen({});
    EXPECT_EQ(gen.generate(100).size(), 100u);
}

TEST(EosTraceGenerator, ChronologicalOpenTimes)
{
    EosTraceGenerator gen({});
    std::vector<AccessRecord> records = gen.generate(500);
    for (size_t i = 1; i < records.size(); ++i)
        EXPECT_GE(records[i].openTime(), records[i - 1].openTime());
}

TEST(EosTraceGenerator, CloseAfterOpen)
{
    EosTraceGenerator gen({});
    for (const AccessRecord &rec : gen.generate(500))
        EXPECT_GT(rec.closeTime(), rec.openTime());
}

TEST(EosTraceGenerator, DeterministicWithSeed)
{
    EosTraceConfig config;
    config.seed = 77;
    EosTraceGenerator gen1(config), gen2(config);
    std::vector<AccessRecord> a = gen1.generate(50);
    std::vector<AccessRecord> b = gen2.generate(50);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].fid, b[i].fid);
        EXPECT_EQ(a[i].rb, b[i].rb);
        EXPECT_EQ(a[i].ots, b[i].ots);
    }
}

TEST(EosTraceGenerator, DifferentSeedsDiffer)
{
    EosTraceConfig c1, c2;
    c1.seed = 1;
    c2.seed = 2;
    EosTraceGenerator gen1(c1), gen2(c2);
    std::vector<AccessRecord> a = gen1.generate(50);
    std::vector<AccessRecord> b = gen2.generate(50);
    size_t same = 0;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i].fid == b[i].fid && a[i].rb == b[i].rb)
            ++same;
    EXPECT_LT(same, 10u);
}

TEST(EosTraceGenerator, FieldRangesValid)
{
    EosTraceConfig config;
    EosTraceGenerator gen(config);
    for (const AccessRecord &rec : gen.generate(1000)) {
        EXPECT_GE(rec.fid, 1u);
        EXPECT_LE(rec.fid, config.fileCount);
        EXPECT_GE(rec.fsid, 1u);
        EXPECT_LE(rec.fsid, config.deviceCount);
        EXPECT_TRUE(rec.rb > 0 || rec.wb > 0);
        EXPECT_FALSE(rec.path.empty());
        EXPECT_GE(rec.otms, 0);
        EXPECT_LT(rec.otms, 1000);
    }
}

TEST(EosTraceGenerator, ReadWriteMixMatchesConfig)
{
    EosTraceConfig config;
    config.readFraction = 0.85;
    EosTraceGenerator gen(config);
    size_t reads = 0, total = 0;
    for (const AccessRecord &rec : gen.generate(5000)) {
        ++total;
        if (rec.rb > 0)
            ++reads;
    }
    EXPECT_NEAR(static_cast<double>(reads) / static_cast<double>(total),
                0.85, 0.03);
}

TEST(EosTraceGenerator, FilePathLookup)
{
    EosTraceGenerator gen({});
    std::vector<AccessRecord> records = gen.generate(10);
    for (const AccessRecord &rec : records)
        EXPECT_EQ(gen.filePath(rec.fid), rec.path);
}

TEST(EosTraceGeneratorDeathTest, BadFid)
{
    EosTraceGenerator gen({});
    EXPECT_DEATH(gen.filePath(0), "fid");
    EXPECT_DEATH(gen.filePath(999999), "fid");
}

/**
 * The Fig. 4 correlation structure: transfer sizes correlate
 * positively with throughput, read/write times strongly negatively.
 */
TEST(EosTraceGenerator, CorrelationSignsMatchPaper)
{
    EosTraceGenerator gen({});
    std::vector<AccessRecord> records = gen.generate(20000);

    std::vector<double> tp, rb, rt;
    for (const AccessRecord &rec : records) {
        tp.push_back(rec.throughput());
        rb.push_back(static_cast<double>(rec.rb));
        rt.push_back(rec.rt);
    }
    EXPECT_GT(pearson(rb, tp), 0.1) << "bytes read should help";
    EXPECT_LT(pearson(rt, tp), -0.05) << "long read times should hurt";
}

TEST(EosTraceGeneratorDeathTest, EmptyCluster)
{
    EosTraceConfig config;
    config.deviceCount = 0;
    EXPECT_DEATH(EosTraceGenerator{config}, "empty");
}

} // namespace
} // namespace trace
} // namespace geo
