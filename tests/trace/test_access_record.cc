/**
 * @file
 * Unit tests for the EOS-style access record.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/access_record.hh"

namespace geo {
namespace trace {
namespace {

AccessRecord
sampleRecord()
{
    AccessRecord rec;
    rec.fid = 42;
    rec.fsid = 3;
    rec.path = "eos/pool0/run001/data00042.root";
    rec.rb = 1000000;
    rec.wb = 0;
    rec.ots = 100;
    rec.otms = 250;
    rec.cts = 101;
    rec.ctms = 250;
    rec.rt = 900.0;
    rec.nrc = 2;
    rec.secgrps = 1;
    rec.secrole = 2;
    rec.secapp = 5;
    rec.td = 0;
    rec.osize = 2000000;
    rec.csize = 2000000;
    return rec;
}

TEST(AccessRecord, ThroughputPaperFormula)
{
    AccessRecord rec = sampleRecord();
    // (rb + wb) / ((cts + ctms/1000) - (ots + otms/1000)) = 1e6 / 1.0
    EXPECT_DOUBLE_EQ(rec.throughput(), 1000000.0);
}

TEST(AccessRecord, ThroughputWithMillisParts)
{
    AccessRecord rec = sampleRecord();
    rec.ctms = 750; // duration 1.5 s
    EXPECT_NEAR(rec.throughput(), 1000000.0 / 1.5, 1e-6);
}

TEST(AccessRecord, ThroughputCountsReadsAndWrites)
{
    AccessRecord rec = sampleRecord();
    rec.wb = 500000;
    EXPECT_DOUBLE_EQ(rec.throughput(), 1500000.0);
}

TEST(AccessRecord, ZeroDurationYieldsZero)
{
    AccessRecord rec = sampleRecord();
    rec.cts = rec.ots;
    rec.ctms = rec.otms;
    EXPECT_DOUBLE_EQ(rec.throughput(), 0.0);
}

TEST(AccessRecord, NegativeDurationYieldsZero)
{
    AccessRecord rec = sampleRecord();
    rec.cts = rec.ots - 10;
    EXPECT_DOUBLE_EQ(rec.throughput(), 0.0);
}

TEST(AccessRecord, TimesAndDuration)
{
    AccessRecord rec = sampleRecord();
    EXPECT_DOUBLE_EQ(rec.openTime(), 100.25);
    EXPECT_DOUBLE_EQ(rec.closeTime(), 101.25);
    EXPECT_DOUBLE_EQ(rec.duration(), 1.0);
}

TEST(AccessRecord, FeatureNamesNonEmptyAndUnique)
{
    std::vector<std::string> names = accessFeatureNames();
    EXPECT_GE(names.size(), 18u);
    std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
}

TEST(AccessRecord, FeatureExtraction)
{
    AccessRecord rec = sampleRecord();
    EXPECT_DOUBLE_EQ(accessFeature(rec, "fid"), 42.0);
    EXPECT_DOUBLE_EQ(accessFeature(rec, "fsid"), 3.0);
    EXPECT_DOUBLE_EQ(accessFeature(rec, "rb"), 1000000.0);
    EXPECT_DOUBLE_EQ(accessFeature(rec, "rt"), 900.0);
    EXPECT_DOUBLE_EQ(accessFeature(rec, "secapp"), 5.0);
}

TEST(AccessRecord, EveryNamedFeatureExtractable)
{
    AccessRecord rec = sampleRecord();
    for (const std::string &name : accessFeatureNames())
        EXPECT_NO_FATAL_FAILURE(accessFeature(rec, name)) << name;
}

TEST(AccessRecordDeathTest, UnknownFeature)
{
    AccessRecord rec = sampleRecord();
    EXPECT_DEATH(accessFeature(rec, "bogus"), "unknown feature");
}

TEST(AccessRecord, CsvRoundTrip)
{
    std::vector<AccessRecord> records = {sampleRecord()};
    records.push_back(sampleRecord());
    records[1].fid = 7;
    records[1].path = "a/b/c.root";
    records[1].wb = 123;

    std::string csv = recordsToCsv(records);
    std::vector<AccessRecord> parsed = recordsFromCsv(csv);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].fid, 42u);
    EXPECT_EQ(parsed[0].path, records[0].path);
    EXPECT_EQ(parsed[1].fid, 7u);
    EXPECT_EQ(parsed[1].wb, 123u);
    EXPECT_DOUBLE_EQ(parsed[0].throughput(), records[0].throughput());
}

TEST(AccessRecord, CsvEmptyInput)
{
    EXPECT_TRUE(recordsFromCsv("").empty());
}

TEST(AccessRecord, CsvSkipsMalformedRows)
{
    std::string csv = recordsToCsv({sampleRecord()});
    csv += "1,2,broken\n";
    EXPECT_EQ(recordsFromCsv(csv).size(), 1u);
}

} // namespace
} // namespace trace
} // namespace geo
