/**
 * @file
 * Tests for training-matrix assembly (smoothing, normalizing,
 * windowing).
 */

#include <gtest/gtest.h>

#include "trace/eos_trace_gen.hh"
#include "trace/feature_matrix.hh"
#include "trace/feature_select.hh"

namespace geo {
namespace trace {
namespace {

std::vector<AccessRecord>
sampleTrace(size_t n = 300)
{
    EosTraceGenerator gen({});
    return gen.generate(n);
}

TEST(FeatureMatrix, Shape)
{
    std::vector<AccessRecord> records = sampleTrace(100);
    nn::Matrix m = buildFeatureMatrix(records, paperSelectedFeatures());
    EXPECT_EQ(m.rows(), 100u);
    EXPECT_EQ(m.cols(), 6u);
}

TEST(FeatureMatrix, ValuesMatchExtractor)
{
    std::vector<AccessRecord> records = sampleTrace(20);
    std::vector<std::string> features = {"rb", "fid"};
    nn::Matrix m = buildFeatureMatrix(records, features);
    for (size_t r = 0; r < records.size(); ++r) {
        EXPECT_DOUBLE_EQ(m.at(r, 0),
                         static_cast<double>(records[r].rb));
        EXPECT_DOUBLE_EQ(m.at(r, 1),
                         static_cast<double>(records[r].fid));
    }
}

TEST(FeatureMatrix, ThroughputTargets)
{
    std::vector<AccessRecord> records = sampleTrace(50);
    nn::Matrix targets = buildThroughputTargets(records);
    EXPECT_EQ(targets.rows(), 50u);
    EXPECT_EQ(targets.cols(), 1u);
    for (size_t r = 0; r < records.size(); ++r)
        EXPECT_DOUBLE_EQ(targets.at(r, 0), records[r].throughput());
}

TEST(PrepareDataset, NormalizedToUnitInterval)
{
    PreparedData prepared =
        prepareDataset(sampleTrace(), paperSelectedFeatures());
    for (double v : prepared.dataset.inputs.data()) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
    for (double v : prepared.dataset.targets.data()) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(PrepareDataset, WindowShrinksRowCount)
{
    PrepareOptions options;
    options.window = 8;
    PreparedData prepared =
        prepareDataset(sampleTrace(100), paperSelectedFeatures(), options);
    EXPECT_EQ(prepared.dataset.size(), 100u - 8 + 1);
    EXPECT_EQ(prepared.dataset.inputs.cols(), 6u * 8);
}

TEST(PrepareDataset, WindowOneKeepsAllRows)
{
    PrepareOptions options;
    options.window = 1;
    PreparedData prepared =
        prepareDataset(sampleTrace(100), paperSelectedFeatures(), options);
    EXPECT_EQ(prepared.dataset.size(), 100u);
}

TEST(PrepareDataset, WindowRowsAreConsecutiveRecords)
{
    std::vector<AccessRecord> records = sampleTrace(40);
    PrepareOptions options;
    options.window = 3;
    options.normalize = false;
    options.smoothingWindow = 1;
    PreparedData prepared =
        prepareDataset(records, {"rb"}, options);
    // Row r = [rb[r], rb[r+1], rb[r+2]], target = throughput[r+2].
    for (size_t r = 0; r + 3 <= records.size(); ++r) {
        EXPECT_DOUBLE_EQ(prepared.dataset.inputs.at(r, 0),
                         static_cast<double>(records[r].rb));
        EXPECT_DOUBLE_EQ(prepared.dataset.inputs.at(r, 2),
                         static_cast<double>(records[r + 2].rb));
        EXPECT_DOUBLE_EQ(prepared.dataset.targets.at(r, 0),
                         records[r + 2].throughput());
    }
}

TEST(PrepareDataset, SmoothingReducesTargetVariance)
{
    std::vector<AccessRecord> records = sampleTrace(2000);
    PrepareOptions rough;
    rough.smoothingWindow = 1;
    rough.normalize = false;
    PrepareOptions smooth;
    smooth.smoothingWindow = 16;
    smooth.normalize = false;

    auto variance = [](const nn::Matrix &m) {
        double mean = 0.0;
        for (double v : m.data())
            mean += v;
        mean /= static_cast<double>(m.size());
        double var = 0.0;
        for (double v : m.data())
            var += (v - mean) * (v - mean);
        return var / static_cast<double>(m.size());
    };

    double rough_var = variance(
        prepareDataset(records, {"rb"}, rough).dataset.targets);
    double smooth_var = variance(
        prepareDataset(records, {"rb"}, smooth).dataset.targets);
    EXPECT_LT(smooth_var, rough_var);
}

TEST(PrepareDataset, DenormalizeTargetRoundTrips)
{
    PreparedData prepared =
        prepareDataset(sampleTrace(), paperSelectedFeatures());
    double normalized = prepared.dataset.targets.at(10, 0);
    double raw = prepared.denormalizeTarget(normalized);
    EXPECT_GE(raw, prepared.targetNorm.columnMin(0));
    EXPECT_LE(raw, prepared.targetNorm.columnMax(0));
}

TEST(PrepareDatasetDeathTest, WindowLargerThanData)
{
    PrepareOptions options;
    options.window = 200;
    EXPECT_DEATH(
        prepareDataset(sampleTrace(100), paperSelectedFeatures(), options),
        "window");
}

TEST(PrepareDatasetDeathTest, ZeroWindow)
{
    PrepareOptions options;
    options.window = 0;
    EXPECT_DEATH(
        prepareDataset(sampleTrace(10), paperSelectedFeatures(), options),
        "window");
}

} // namespace
} // namespace trace
} // namespace geo
