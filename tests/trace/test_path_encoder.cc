/**
 * @file
 * Unit tests for the categorical path encoder.
 */

#include <gtest/gtest.h>

#include "trace/path_encoder.hh"

namespace geo {
namespace trace {
namespace {

TEST(PathEncoder, PaperExample)
{
    // foo/bar/bat.root -> 123 with foo=1, bar=2, bat.root=3 (radix 10).
    PathEncoder encoder(10);
    EXPECT_EQ(encoder.encode("foo/bar/bat.root"), 123u);
}

TEST(PathEncoder, FirstSeenOrderAssignsIndices)
{
    // Shared dictionary: a=1, x=2, b=3 in first-seen order.
    PathEncoder encoder(1000);
    uint64_t first = encoder.encode("a/x");
    uint64_t second = encoder.encode("b/x");
    EXPECT_EQ(first, 1 * 1000 + 2u);
    EXPECT_EQ(second, 3 * 1000 + 2u);
}

TEST(PathEncoder, StableOnRepeat)
{
    PathEncoder encoder;
    uint64_t code = encoder.encode("data/run1/f.root");
    EXPECT_EQ(encoder.encode("data/run1/f.root"), code);
}

TEST(PathEncoder, SharedPrefixCodesAreClose)
{
    // Locality: siblings differ only in the last digit group.
    PathEncoder encoder(1000);
    uint64_t a = encoder.encode("data/run1/a.root");
    uint64_t b = encoder.encode("data/run1/b.root");
    uint64_t far = encoder.encode("other/run9/z.root");
    EXPECT_EQ(a / 1000, b / 1000); // same directory prefix code
    EXPECT_NE(a / 1000, far / 1000);
    EXPECT_LT(b - a, 1000u);
}

TEST(PathEncoder, SlashNormalization)
{
    PathEncoder encoder;
    uint64_t code = encoder.encode("a/b/c");
    EXPECT_EQ(encoder.encode("/a/b/c"), code);
    EXPECT_EQ(encoder.encode("a//b/c/"), code);
}

TEST(PathEncoder, EmptyPathIsZero)
{
    PathEncoder encoder;
    EXPECT_EQ(encoder.encode(""), 0u);
    EXPECT_EQ(encoder.encode("///"), 0u);
}

TEST(PathEncoder, DecodeInvertsEncode)
{
    PathEncoder encoder;
    for (const std::string &path :
         {"foo/bar/bat.root", "foo/baz/qux.root", "single", "a/b"}) {
        uint64_t code = encoder.encode(path);
        EXPECT_EQ(encoder.decode(code), path);
    }
}

TEST(PathEncoder, DecodeUnknownCodeEmpty)
{
    PathEncoder encoder(10);
    encoder.encode("a/b");
    EXPECT_EQ(encoder.decode(999), "");
}

TEST(PathEncoder, ReadOnlyDoesNotMutate)
{
    PathEncoder encoder;
    encoder.encode("known/path");
    size_t size = encoder.dictionarySize();
    EXPECT_EQ(encoder.encodeReadOnly("unknown/path2"), 0u);
    EXPECT_EQ(encoder.dictionarySize(), size);
    EXPECT_EQ(encoder.encodeReadOnly("known/path"),
              encoder.encode("known/path"));
}

TEST(PathEncoder, DictionarySharedAcrossLevels)
{
    PathEncoder encoder;
    encoder.encode("a/x");
    encoder.encode("a/y");
    encoder.encode("b/x");
    // Distinct names: a, x, y, b.
    EXPECT_EQ(encoder.dictionarySize(), 4u);
    // Reusing a name at another level reuses its index: "x/a" is the
    // mirror of "a/x".
    uint64_t ax = encoder.encodeReadOnly("a/x");
    uint64_t xa = encoder.encode("x/a");
    uint64_t radix = encoder.radix();
    EXPECT_EQ(ax % radix, xa / radix);
    EXPECT_EQ(ax / radix, xa % radix);
}

TEST(PathEncoder, SplitPath)
{
    EXPECT_EQ(PathEncoder::splitPath("/a//b/c/"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(PathEncoder::splitPath("").empty());
}

TEST(PathEncoderDeathTest, RadixTooSmall)
{
    EXPECT_DEATH(PathEncoder(1), "radix");
}

TEST(PathEncoderDeathTest, RadixOverflow)
{
    PathEncoder encoder(3);
    encoder.encode("a");
    encoder.encode("b");
    EXPECT_DEATH(encoder.encode("c"), "overflow");
}

} // namespace
} // namespace trace
} // namespace geo
