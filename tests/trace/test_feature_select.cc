/**
 * @file
 * Tests for correlation-based feature screening (Fig. 4 machinery).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/eos_trace_gen.hh"
#include "trace/feature_select.hh"

namespace geo {
namespace trace {
namespace {

std::vector<AccessRecord>
sampleTrace(size_t n = 5000)
{
    EosTraceGenerator gen({});
    return gen.generate(n);
}

TEST(FeatureSelect, PaperSetHasSixFeatures)
{
    EXPECT_EQ(paperSelectedFeatures().size(), 6u);
    EXPECT_EQ(cernFeatureSet().size(), 13u);
}

TEST(FeatureSelect, CorrelationsCoverAllFeatures)
{
    std::vector<FeatureCorrelation> all =
        correlateFeatures(sampleTrace());
    EXPECT_EQ(all.size(), accessFeatureNames().size());
}

TEST(FeatureSelect, SortedDescending)
{
    std::vector<FeatureCorrelation> all =
        correlateFeatures(sampleTrace());
    for (size_t i = 1; i < all.size(); ++i)
        EXPECT_GE(all[i - 1].correlation, all[i].correlation);
}

TEST(FeatureSelect, ChosenFlagsMatchSelection)
{
    std::vector<FeatureCorrelation> all =
        correlateFeatures(sampleTrace());
    size_t chosen = 0;
    for (const FeatureCorrelation &fc : all) {
        bool in_paper_set =
            std::find(paperSelectedFeatures().begin(),
                      paperSelectedFeatures().end(),
                      fc.name) != paperSelectedFeatures().end();
        EXPECT_EQ(fc.chosen, in_paper_set) << fc.name;
        chosen += fc.chosen ? 1 : 0;
    }
    EXPECT_EQ(chosen, 6u);
}

TEST(FeatureSelect, CorrelationsWithinMinusOneOne)
{
    for (const FeatureCorrelation &fc : correlateFeatures(sampleTrace())) {
        EXPECT_GE(fc.correlation, -1.0) << fc.name;
        EXPECT_LE(fc.correlation, 1.0) << fc.name;
    }
}

TEST(FeatureSelect, ReadWriteTimesNegative)
{
    // The paper rejects rt/wt for being strongly negatively correlated.
    for (const FeatureCorrelation &fc :
         correlateFeatures(sampleTrace(20000))) {
        if (fc.name == "rt")
            EXPECT_LT(fc.correlation, 0.0);
    }
}

TEST(FeatureSelect, TopKReturnsKLargestByMagnitude)
{
    std::vector<AccessRecord> records = sampleTrace();
    std::vector<std::string> top = selectTopFeatures(records, 4);
    EXPECT_EQ(top.size(), 4u);

    std::vector<FeatureCorrelation> all = correlateFeatures(records, {});
    std::sort(all.begin(), all.end(),
              [](const auto &a, const auto &b) {
                  return std::abs(a.correlation) > std::abs(b.correlation);
              });
    for (size_t i = 0; i < top.size(); ++i)
        EXPECT_EQ(top[i], all[i].name);
}

TEST(FeatureSelect, TopKClampedToFeatureCount)
{
    std::vector<std::string> top =
        selectTopFeatures(sampleTrace(500), 999);
    EXPECT_EQ(top.size(), accessFeatureNames().size());
}

TEST(FeatureSelectDeathTest, EmptyRecords)
{
    std::vector<AccessRecord> empty;
    EXPECT_DEATH(correlateFeatures(empty), "no records");
}

} // namespace
} // namespace trace
} // namespace geo
