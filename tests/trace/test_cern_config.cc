/**
 * @file
 * The CERN EOS configuration: the 13-feature variant of the pipeline
 * (paper Section V-G trains with 13 metrics from the EOS logs) end to
 * end — dataset assembly, Z = 13 model construction, and a training
 * smoke test.
 */

#include <gtest/gtest.h>

#include "nn/model_zoo.hh"
#include "trace/eos_trace_gen.hh"
#include "trace/feature_matrix.hh"
#include "trace/feature_select.hh"

namespace geo {
namespace trace {
namespace {

std::vector<AccessRecord>
sampleTrace(size_t n = 2000)
{
    EosTraceGenerator gen({});
    return gen.generate(n);
}

TEST(CernConfig, ThirteenFeatures)
{
    EXPECT_EQ(cernFeatureSet().size(), 13u);
    for (const std::string &name : cernFeatureSet()) {
        bool known = false;
        for (const std::string &feature : accessFeatureNames())
            known = known || feature == name;
        EXPECT_TRUE(known) << name;
    }
}

TEST(CernConfig, DatasetShape)
{
    PreparedData prepared =
        prepareDataset(sampleTrace(500), cernFeatureSet());
    EXPECT_EQ(prepared.dataset.inputs.cols(), 13u);
    EXPECT_EQ(prepared.dataset.size(), 500u);
}

TEST(CernConfig, Model1WidthScalesWithZ)
{
    Rng rng(13);
    nn::Sequential model = nn::buildModel(1, 13, rng);
    EXPECT_EQ(model.inputSize(), 13u);
    EXPECT_EQ(model.layer(0).outputSize(), 16u * 13u);
}

TEST(CernConfig, TrainingSmokeTest)
{
    PreparedData prepared =
        prepareDataset(sampleTrace(1500), cernFeatureSet());
    nn::DataSplit split = nn::chronologicalSplit(prepared.dataset);
    Rng rng(14);
    nn::Sequential model = nn::buildModel(1, 13, rng);
    nn::SgdOptimizer opt(0.05, 5.0);
    nn::TrainOptions options;
    options.epochs = 10;
    nn::TrainResult result =
        model.train(split.train, split.validation, opt, options);
    EXPECT_FALSE(result.diverged);
    EXPECT_LT(result.trainLoss.back(), result.trainLoss.front());
}

TEST(CernConfig, RecurrentWindowWithZ13)
{
    PrepareOptions options;
    options.window = 4;
    PreparedData prepared =
        prepareDataset(sampleTrace(200), cernFeatureSet(), options);
    EXPECT_EQ(prepared.dataset.inputs.cols(), 13u * 4u);

    Rng rng(15);
    nn::Sequential model = nn::buildModel(12, 13, rng, 4); // LSTM
    EXPECT_EQ(model.inputSize(), prepared.dataset.inputs.cols());
    nn::Matrix out = model.predict(prepared.dataset.inputs.rowRange(0, 8));
    EXPECT_EQ(out.rows(), 8u);
    EXPECT_FALSE(out.hasNonFinite());
}

} // namespace
} // namespace trace
} // namespace geo
