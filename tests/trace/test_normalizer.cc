/**
 * @file
 * Unit tests for min-max normalization.
 */

#include <gtest/gtest.h>

#include "trace/normalizer.hh"
#include "util/random.hh"

namespace geo {
namespace trace {
namespace {

using nn::Matrix;

TEST(MinMaxNormalizer, TransformsToUnitInterval)
{
    Matrix data = Matrix::fromRows({{0.0, -10.0}, {5.0, 0.0},
                                    {10.0, 10.0}});
    MinMaxNormalizer norm;
    norm.fit(data);
    Matrix out = norm.transform(data);
    EXPECT_DOUBLE_EQ(out.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(out.at(1, 0), 0.5);
    EXPECT_DOUBLE_EQ(out.at(2, 0), 1.0);
    EXPECT_DOUBLE_EQ(out.at(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(out.at(2, 1), 1.0);
}

TEST(MinMaxNormalizer, InverseRoundTrips)
{
    Rng rng(111);
    Matrix data(30, 4);
    data.fillNormal(rng, 50.0);
    MinMaxNormalizer norm;
    norm.fit(data);
    Matrix back = norm.inverseTransform(norm.transform(data));
    for (size_t i = 0; i < data.size(); ++i)
        EXPECT_NEAR(back.data()[i], data.data()[i], 1e-9);
}

TEST(MinMaxNormalizer, ConstantColumnMapsToHalf)
{
    Matrix data = Matrix::fromRows({{7.0, 1.0}, {7.0, 2.0}});
    MinMaxNormalizer norm;
    norm.fit(data);
    Matrix out = norm.transform(data);
    EXPECT_DOUBLE_EQ(out.at(0, 0), 0.5);
    EXPECT_DOUBLE_EQ(out.at(1, 0), 0.5);
}

TEST(MinMaxNormalizer, OutOfRangeValuesClamped)
{
    Matrix data = Matrix::fromRows({{0.0}, {10.0}});
    MinMaxNormalizer norm;
    norm.fit(data);
    Matrix probe = Matrix::fromRows({{-5.0}, {15.0}});
    Matrix out = norm.transform(probe);
    EXPECT_DOUBLE_EQ(out.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(out.at(1, 0), 1.0);
}

TEST(MinMaxNormalizer, UpdateWidensRanges)
{
    Matrix first = Matrix::fromRows({{0.0}, {10.0}});
    Matrix second = Matrix::fromRows({{-10.0}, {20.0}});
    MinMaxNormalizer norm;
    norm.fit(first);
    norm.update(second);
    EXPECT_DOUBLE_EQ(norm.columnMin(0), -10.0);
    EXPECT_DOUBLE_EQ(norm.columnMax(0), 20.0);
}

TEST(MinMaxNormalizer, ScalarHelpers)
{
    Matrix data = Matrix::fromRows({{0.0}, {4.0}});
    MinMaxNormalizer norm;
    norm.fit(data);
    EXPECT_DOUBLE_EQ(norm.value(1.0, 0), 0.25);
    EXPECT_DOUBLE_EQ(norm.inverseValue(0.25, 0), 1.0);
}

TEST(MinMaxNormalizerDeathTest, TransformBeforeFit)
{
    MinMaxNormalizer norm;
    Matrix data(1, 1);
    EXPECT_DEATH(norm.transform(data), "before fit");
}

TEST(MinMaxNormalizerDeathTest, ColumnMismatch)
{
    MinMaxNormalizer norm;
    norm.fit(Matrix(2, 3));
    EXPECT_DEATH(norm.transform(Matrix(2, 4)), "columns");
}

TEST(MinMaxNormalizerDeathTest, EmptyData)
{
    MinMaxNormalizer norm;
    EXPECT_DEATH(norm.fit(Matrix(0, 3)), "empty");
}

} // namespace
} // namespace trace
} // namespace geo
