/**
 * @file
 * Unit tests for min-max normalization.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "trace/normalizer.hh"
#include "util/random.hh"

namespace geo {
namespace trace {
namespace {

using nn::Matrix;

TEST(MinMaxNormalizer, TransformsToUnitInterval)
{
    Matrix data = Matrix::fromRows({{0.0, -10.0}, {5.0, 0.0},
                                    {10.0, 10.0}});
    MinMaxNormalizer norm;
    norm.fit(data);
    Matrix out = norm.transform(data);
    EXPECT_DOUBLE_EQ(out.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(out.at(1, 0), 0.5);
    EXPECT_DOUBLE_EQ(out.at(2, 0), 1.0);
    EXPECT_DOUBLE_EQ(out.at(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(out.at(2, 1), 1.0);
}

TEST(MinMaxNormalizer, InverseRoundTrips)
{
    Rng rng(111);
    Matrix data(30, 4);
    data.fillNormal(rng, 50.0);
    MinMaxNormalizer norm;
    norm.fit(data);
    Matrix back = norm.inverseTransform(norm.transform(data));
    for (size_t i = 0; i < data.size(); ++i)
        EXPECT_NEAR(back.data()[i], data.data()[i], 1e-9);
}

TEST(MinMaxNormalizer, ConstantColumnMapsToHalf)
{
    Matrix data = Matrix::fromRows({{7.0, 1.0}, {7.0, 2.0}});
    MinMaxNormalizer norm;
    norm.fit(data);
    Matrix out = norm.transform(data);
    EXPECT_DOUBLE_EQ(out.at(0, 0), 0.5);
    EXPECT_DOUBLE_EQ(out.at(1, 0), 0.5);
}

TEST(MinMaxNormalizer, OutOfRangeValuesClamped)
{
    Matrix data = Matrix::fromRows({{0.0}, {10.0}});
    MinMaxNormalizer norm;
    norm.fit(data);
    Matrix probe = Matrix::fromRows({{-5.0}, {15.0}});
    Matrix out = norm.transform(probe);
    EXPECT_DOUBLE_EQ(out.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(out.at(1, 0), 1.0);
}

TEST(MinMaxNormalizer, UpdateWidensRanges)
{
    Matrix first = Matrix::fromRows({{0.0}, {10.0}});
    Matrix second = Matrix::fromRows({{-10.0}, {20.0}});
    MinMaxNormalizer norm;
    norm.fit(first);
    norm.update(second);
    EXPECT_DOUBLE_EQ(norm.columnMin(0), -10.0);
    EXPECT_DOUBLE_EQ(norm.columnMax(0), 20.0);
}

TEST(MinMaxNormalizer, ScalarHelpers)
{
    Matrix data = Matrix::fromRows({{0.0}, {4.0}});
    MinMaxNormalizer norm;
    norm.fit(data);
    EXPECT_DOUBLE_EQ(norm.value(1.0, 0), 0.25);
    EXPECT_DOUBLE_EQ(norm.inverseValue(0.25, 0), 1.0);
}

// Regression: a single NaN in a batch used to poison the scaler for
// the rest of the run (row 0 seeded the ranges unconditionally, and
// every later min/max fold against NaN stays NaN). Non-finite values
// must be skipped and counted, and the resulting ranges must equal
// the ones fitted on the finite values alone.
TEST(MinMaxNormalizer, PoisonedBatchLeavesScalerStateFinite)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    Matrix poisoned = Matrix::fromRows({{nan, 5.0},
                                        {2.0, inf},
                                        {8.0, -3.0},
                                        {4.0, -inf}});
    MinMaxNormalizer norm;
    norm.fit(poisoned);
    EXPECT_EQ(norm.rejectedNonFinite(), 3u);
    // Exactly the ranges of the finite values, bit for bit.
    EXPECT_DOUBLE_EQ(norm.columnMin(0), 2.0);
    EXPECT_DOUBLE_EQ(norm.columnMax(0), 8.0);
    EXPECT_DOUBLE_EQ(norm.columnMin(1), -3.0);
    EXPECT_DOUBLE_EQ(norm.columnMax(1), 5.0);

    Matrix clean = Matrix::fromRows({{2.0, 5.0}, {8.0, -3.0}});
    MinMaxNormalizer reference;
    reference.fit(clean);
    Matrix probe = Matrix::fromRows({{5.0, 1.0}});
    Matrix a = norm.transform(probe);
    Matrix b = reference.transform(probe);
    EXPECT_DOUBLE_EQ(a.at(0, 0), b.at(0, 0));
    EXPECT_DOUBLE_EQ(a.at(0, 1), b.at(0, 1));
}

TEST(MinMaxNormalizer, NanInRowZeroDoesNotPoisonLaterUpdates)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    MinMaxNormalizer norm;
    norm.fit(Matrix::fromRows({{nan}}));
    EXPECT_EQ(norm.rejectedNonFinite(), 1u);
    // A column that never saw a finite value degrades to the
    // constant-column behavior (everything maps to 0.5)...
    EXPECT_DOUBLE_EQ(norm.value(123.0, 0), 0.5);
    // ...and recovers as soon as finite data arrives.
    norm.update(Matrix::fromRows({{10.0}, {20.0}}));
    EXPECT_DOUBLE_EQ(norm.columnMin(0), 10.0);
    EXPECT_DOUBLE_EQ(norm.columnMax(0), 20.0);
    EXPECT_DOUBLE_EQ(norm.value(15.0, 0), 0.5);
    EXPECT_DOUBLE_EQ(norm.value(10.0, 0), 0.0);
}

TEST(MinMaxNormalizer, AllFiniteDataIsBitIdenticalToOldBehavior)
{
    Rng rng(42);
    Matrix data(64, 6);
    data.fillNormal(rng, 100.0);
    MinMaxNormalizer norm;
    norm.fit(data);
    EXPECT_EQ(norm.rejectedNonFinite(), 0u);
    for (size_t c = 0; c < data.cols(); ++c) {
        double lo = data.at(0, c), hi = data.at(0, c);
        for (size_t r = 1; r < data.rows(); ++r) {
            lo = std::min(lo, data.at(r, c));
            hi = std::max(hi, data.at(r, c));
        }
        EXPECT_DOUBLE_EQ(norm.columnMin(c), lo);
        EXPECT_DOUBLE_EQ(norm.columnMax(c), hi);
    }
}

TEST(MinMaxNormalizerDeathTest, TransformBeforeFit)
{
    MinMaxNormalizer norm;
    Matrix data(1, 1);
    EXPECT_DEATH(norm.transform(data), "before fit");
}

TEST(MinMaxNormalizerDeathTest, ColumnMismatch)
{
    MinMaxNormalizer norm;
    norm.fit(Matrix(2, 3));
    EXPECT_DEATH(norm.transform(Matrix(2, 4)), "columns");
}

TEST(MinMaxNormalizerDeathTest, EmptyData)
{
    MinMaxNormalizer norm;
    EXPECT_DEATH(norm.fit(Matrix(0, 3)), "empty");
}

} // namespace
} // namespace trace
} // namespace geo
