/**
 * @file
 * Tests for the storage system (files, accesses, migrations).
 */

#include <gtest/gtest.h>

#include "storage/system.hh"

namespace geo {
namespace storage {
namespace {

DeviceConfig
namedDevice(const std::string &name, double bw = 1e9,
            uint64_t capacity = 1ULL << 30)
{
    DeviceConfig config;
    config.name = name;
    config.readBandwidth = bw;
    config.writeBandwidth = bw / 2.0;
    config.capacityBytes = capacity;
    config.traffic.baseLoad = 0.0;
    config.traffic.diurnalAmplitude = 0.0;
    config.traffic.burstProbability = 0.0;
    config.traffic.noiseAmplitude = 0.0;
    return config;
}

StorageSystem
twoDeviceSystem()
{
    StorageSystem system;
    system.addDevice(namedDevice("fast", 2e9));
    system.addDevice(namedDevice("slow", 2e8));
    return system;
}

TEST(StorageSystem, AddAndLookupDevices)
{
    StorageSystem system = twoDeviceSystem();
    EXPECT_EQ(system.deviceCount(), 2u);
    EXPECT_EQ(system.deviceByName("fast"), 0u);
    EXPECT_EQ(system.deviceByName("slow"), 1u);
    EXPECT_EQ(system.deviceIds(), (std::vector<DeviceId>{0, 1}));
}

TEST(StorageSystemDeathTest, UnknownDeviceName)
{
    StorageSystem system = twoDeviceSystem();
    EXPECT_DEATH(system.deviceByName("missing"), "no device");
}

TEST(StorageSystem, AddFileReservesCapacity)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f.root", 1000, 0);
    EXPECT_EQ(system.fileCount(), 1u);
    EXPECT_EQ(system.location(file), 0u);
    EXPECT_EQ(system.device(0).usedBytes(), 1000u);
}

TEST(StorageSystemDeathTest, AddFileOverCapacity)
{
    StorageSystem system;
    system.addDevice(namedDevice("tiny", 1e9, 100));
    EXPECT_DEATH(system.addFile("big", 200, 0), "cannot hold");
}

TEST(StorageSystem, AccessAdvancesClockAndReportsThroughput)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f.root", 1000000, 0);
    double before = system.clock().now();
    AccessObservation obs = system.access(file, 500000, true);
    EXPECT_GT(system.clock().now(), before);
    EXPECT_EQ(obs.file, file);
    EXPECT_EQ(obs.device, 0u);
    EXPECT_EQ(obs.readBytes, 500000u);
    EXPECT_EQ(obs.writtenBytes, 0u);
    EXPECT_GT(obs.throughput, 0.0);
    EXPECT_DOUBLE_EQ(obs.endTime - obs.startTime, obs.duration());
}

TEST(StorageSystem, WriteAccessRecordsWrittenBytes)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f.root", 1000000, 0);
    AccessObservation obs = system.access(file, 1234, false);
    EXPECT_EQ(obs.writtenBytes, 1234u);
    EXPECT_EQ(obs.readBytes, 0u);
}

TEST(StorageSystem, MoveFileChangesLocationAndCapacity)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f.root", 1000, 0);
    MoveResult result = system.moveFile(file, 1);
    EXPECT_TRUE(result.moved);
    EXPECT_EQ(result.from, 0u);
    EXPECT_EQ(result.to, 1u);
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_EQ(system.location(file), 1u);
    EXPECT_EQ(system.device(0).usedBytes(), 0u);
    EXPECT_EQ(system.device(1).usedBytes(), 1000u);
    EXPECT_EQ(system.migrationCount(), 1u);
    EXPECT_EQ(system.migratedBytes(), 1000u);
}

TEST(StorageSystem, MoveToSameDeviceIsNoOp)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f.root", 1000, 0);
    MoveResult result = system.moveFile(file, 0);
    EXPECT_FALSE(result.moved);
    EXPECT_EQ(system.migrationCount(), 0u);
}

TEST(StorageSystem, MoveToMissingDeviceFails)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f.root", 1000, 0);
    EXPECT_FALSE(system.moveFile(file, 99).moved);
}

TEST(StorageSystem, MoveToReadOnlyDeviceFails)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f.root", 1000, 0);
    system.device(1).setWritable(false);
    EXPECT_FALSE(system.moveFile(file, 1).moved);
    EXPECT_EQ(system.location(file), 0u);
}

TEST(StorageSystem, MoveToFullDeviceFails)
{
    StorageSystem system;
    system.addDevice(namedDevice("a", 1e9, 2000));
    system.addDevice(namedDevice("b", 1e9, 500));
    FileId file = system.addFile("f.root", 1000, 0);
    EXPECT_FALSE(system.moveFile(file, 1).moved);
}

TEST(StorageSystem, MoveCostBoundedByNetwork)
{
    SystemConfig config;
    config.networkBandwidth = 1e6; // slow network dominates
    StorageSystem system(config);
    system.addDevice(namedDevice("a", 1e9));
    system.addDevice(namedDevice("b", 1e9));
    FileId file = system.addFile("f.root", 1000000, 0);
    MoveResult result = system.moveFile(file, 1);
    EXPECT_NEAR(result.seconds, 1.0, 0.05);
}

TEST(StorageSystem, BackgroundMovesDontAdvanceClock)
{
    StorageSystem system = twoDeviceSystem(); // default: background
    FileId file = system.addFile("f.root", 1000000, 0);
    double before = system.clock().now();
    system.moveFile(file, 1);
    EXPECT_DOUBLE_EQ(system.clock().now(), before);
}

TEST(StorageSystem, ForegroundMovesAdvanceClock)
{
    SystemConfig config;
    config.backgroundMoves = false;
    StorageSystem system(config);
    system.addDevice(namedDevice("a"));
    system.addDevice(namedDevice("b"));
    FileId file = system.addFile("f.root", 1000000, 0);
    system.moveFile(file, 1);
    EXPECT_GT(system.clock().now(), 0.0);
}

TEST(StorageSystem, MigrationLoadsBothDevices)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f.root", 100000000, 0);
    double src_before = system.device(0).selfLoad(0.0);
    double dst_before = system.device(1).selfLoad(0.0);
    system.moveFile(file, 1);
    EXPECT_GT(system.device(0).selfLoad(0.0), src_before);
    EXPECT_GT(system.device(1).selfLoad(0.0), dst_before);
}

TEST(StorageSystem, ObserversFire)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f.root", 1000, 0);
    int accesses = 0, moves = 0;
    system.onAccess([&](const AccessObservation &) { ++accesses; });
    system.onMove([&](const MoveResult &) { ++moves; });
    system.access(file, 100, true);
    system.moveFile(file, 1);
    system.moveFile(file, 1); // no-op, must not fire
    EXPECT_EQ(accesses, 1);
    EXPECT_EQ(moves, 1);
}

TEST(StorageSystem, LayoutSnapshot)
{
    StorageSystem system = twoDeviceSystem();
    FileId f1 = system.addFile("a", 10, 0);
    FileId f2 = system.addFile("b", 10, 1);
    auto layout = system.layout();
    EXPECT_EQ(layout.at(f1), 0u);
    EXPECT_EQ(layout.at(f2), 1u);
    auto counts = system.filesPerDevice();
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 1u);
}

TEST(StorageSystemDeathTest, BadFileId)
{
    StorageSystem system = twoDeviceSystem();
    EXPECT_DEATH(system.file(0), "out of range");
}

} // namespace
} // namespace storage
} // namespace geo
