/**
 * @file
 * Tests for the deterministic external-traffic model.
 */

#include <gtest/gtest.h>

#include "storage/external_traffic.hh"

namespace geo {
namespace storage {
namespace {

TEST(ExternalTraffic, DeterministicPureFunction)
{
    ExternalTrafficConfig config;
    config.seed = 5;
    ExternalTraffic t1(config), t2(config);
    for (double at : {0.0, 10.0, 123.4, 9999.0})
        EXPECT_DOUBLE_EQ(t1.load(at), t2.load(at));
}

TEST(ExternalTraffic, NonNegativeEverywhere)
{
    ExternalTrafficConfig config;
    config.baseLoad = 0.0;
    config.noiseAmplitude = 0.5;
    ExternalTraffic traffic(config);
    for (int i = 0; i < 5000; ++i)
        EXPECT_GE(traffic.load(static_cast<double>(i) * 1.7), 0.0);
}

TEST(ExternalTraffic, DiurnalHasPeriod)
{
    ExternalTrafficConfig config;
    config.periodSeconds = 100.0;
    ExternalTraffic traffic(config);
    for (double at : {5.0, 33.0, 71.0})
        EXPECT_NEAR(traffic.diurnal(at), traffic.diurnal(at + 100.0),
                    1e-9);
}

TEST(ExternalTraffic, DiurnalBoundedByAmplitude)
{
    ExternalTrafficConfig config;
    config.diurnalAmplitude = 0.8;
    ExternalTraffic traffic(config);
    for (int i = 0; i < 1000; ++i) {
        double d = traffic.diurnal(static_cast<double>(i));
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 0.8);
    }
}

TEST(ExternalTraffic, BurstsRaiseLoad)
{
    ExternalTrafficConfig config;
    config.baseLoad = 0.1;
    config.diurnalAmplitude = 0.0;
    config.noiseAmplitude = 0.0;
    config.burstProbability = 0.05;
    config.burstMagnitude = 10.0;
    ExternalTraffic traffic(config);

    bool saw_burst = false, saw_quiet = false;
    for (int i = 0; i < 10000; ++i) {
        double at = static_cast<double>(i) * config.burstSeconds;
        if (traffic.inBurst(at)) {
            saw_burst = true;
            EXPECT_GT(traffic.load(at), 5.0);
        } else {
            saw_quiet = true;
            EXPECT_LT(traffic.load(at), 1.0);
        }
    }
    EXPECT_TRUE(saw_burst);
    EXPECT_TRUE(saw_quiet);
}

TEST(ExternalTraffic, BurstFrequencyNearConfig)
{
    ExternalTrafficConfig config;
    config.burstProbability = 0.03;
    ExternalTraffic traffic(config);
    int bursts = 0;
    const int buckets = 50000;
    for (int i = 0; i < buckets; ++i)
        bursts += traffic.inBurst(static_cast<double>(i) *
                                  config.burstSeconds)
                      ? 1
                      : 0;
    EXPECT_NEAR(static_cast<double>(bursts) / buckets, 0.03, 0.005);
}

TEST(ExternalTraffic, SeedsDecorrelateDevices)
{
    ExternalTrafficConfig c1, c2;
    c1.seed = 1;
    c2.seed = 2;
    c1.burstProbability = c2.burstProbability = 0.1;
    ExternalTraffic t1(c1), t2(c2);
    int both = 0, either = 0;
    for (int i = 0; i < 20000; ++i) {
        double at = static_cast<double>(i) * c1.burstSeconds;
        bool b1 = t1.inBurst(at), b2 = t2.inBurst(at);
        both += (b1 && b2) ? 1 : 0;
        either += (b1 || b2) ? 1 : 0;
    }
    // Independent bursts: P(both) ~ p^2, far below P(either).
    EXPECT_LT(both * 5, either);
}

TEST(ExternalTraffic, NegativeTimeClamped)
{
    ExternalTraffic traffic({});
    EXPECT_GE(traffic.load(-100.0), 0.0);
}

TEST(ExternalTrafficDeathTest, BadPeriod)
{
    ExternalTrafficConfig config;
    config.periodSeconds = 0.0;
    EXPECT_DEATH(ExternalTraffic{config}, "period");
}

} // namespace
} // namespace storage
} // namespace geo
