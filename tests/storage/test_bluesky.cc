/**
 * @file
 * Tests for the Bluesky testbed preset.
 */

#include <gtest/gtest.h>

#include "storage/bluesky.hh"

namespace geo {
namespace storage {
namespace {

TEST(Bluesky, SixMounts)
{
    auto system = makeBlueskySystem();
    EXPECT_EQ(system->deviceCount(), 6u);
    for (const std::string &name : blueskyMountNames())
        EXPECT_NO_FATAL_FAILURE(system->deviceByName(name)) << name;
}

TEST(Bluesky, MountNamesMatchPaper)
{
    EXPECT_EQ(blueskyMountNames(),
              (std::vector<std::string>{"file0", "pic", "people", "tmp",
                                        "var", "USBtmp"}));
}

TEST(Bluesky, File0FastestReadUsbSlowest)
{
    auto system = makeBlueskySystem();
    const StorageDevice &file0 =
        system->device(system->deviceByName("file0"));
    const StorageDevice &usb =
        system->device(system->deviceByName("USBtmp"));
    for (const std::string &name : blueskyMountNames()) {
        const StorageDevice &dev = system->device(system->deviceByName(name));
        EXPECT_LE(dev.config().readBandwidth,
                  file0.config().readBandwidth)
            << name;
        EXPECT_GE(dev.config().readBandwidth, usb.config().readBandwidth)
            << name;
    }
}

TEST(Bluesky, Raid5WriteImbalance)
{
    // The paper notes LRU struggles with file0's read/write imbalance.
    auto system = makeBlueskySystem();
    const DeviceConfig &file0 =
        system->device(system->deviceByName("file0")).config();
    EXPECT_GT(file0.readBandwidth / file0.writeBandwidth, 2.5);
}

TEST(Bluesky, SharedMountsCarryMoreExternalLoad)
{
    auto system = makeBlueskySystem();
    auto mean_load = [&](const std::string &name) {
        const StorageDevice &dev =
            system->device(system->deviceByName(name));
        double total = 0.0;
        for (int i = 0; i < 2000; ++i)
            total += dev.externalLoad(static_cast<double>(i) * 3.3);
        return total / 2000.0;
    };
    double people = mean_load("people");
    double pic = mean_load("pic");
    double file0 = mean_load("file0");
    double usb = mean_load("USBtmp");
    EXPECT_GT(people, file0);
    EXPECT_GT(pic, file0);
    EXPECT_GT(file0, usb);
}

TEST(Bluesky, DeterministicAcrossSeeds)
{
    auto s1 = makeBlueskySystem(7);
    auto s2 = makeBlueskySystem(7);
    auto s3 = makeBlueskySystem(8);
    const StorageDevice &a = s1->device(2);
    const StorageDevice &b = s2->device(2);
    const StorageDevice &c = s3->device(2);
    double t = 1234.5;
    EXPECT_DOUBLE_EQ(a.externalLoad(t), b.externalLoad(t));
    // Different traffic seed -> different burst pattern somewhere.
    bool differs = false;
    for (int i = 0; i < 1000 && !differs; ++i)
        differs = a.externalLoad(i * 17.0) != c.externalLoad(i * 17.0);
    EXPECT_TRUE(differs);
}

TEST(Bluesky, CapacitiesHoldBelle2Files)
{
    // 24 files of <= 1.1 GB each must fit on every mount.
    auto system = makeBlueskySystem();
    uint64_t worst_case = 24ULL * 1181116006ULL;
    for (DeviceId id : system->deviceIds())
        EXPECT_GT(system->device(id).capacityBytes(), worst_case);
}

} // namespace
} // namespace storage
} // namespace geo
