/**
 * @file
 * Tests for incremental (chunked) file migration.
 */

#include <gtest/gtest.h>

#include "storage/system.hh"

namespace geo {
namespace storage {
namespace {

DeviceConfig
quietDevice(const std::string &name, double bw = 1e9)
{
    DeviceConfig config;
    config.name = name;
    config.readBandwidth = bw;
    config.writeBandwidth = bw;
    config.capacityBytes = 1ULL << 34;
    config.traffic.baseLoad = 0.0;
    config.traffic.diurnalAmplitude = 0.0;
    config.traffic.burstProbability = 0.0;
    config.traffic.noiseAmplitude = 0.0;
    return config;
}

StorageSystem
twoDevices()
{
    StorageSystem system;
    system.addDevice(quietDevice("a"));
    system.addDevice(quietDevice("b"));
    return system;
}

TEST(ChunkedMigration, MovesFileAndAccounts)
{
    StorageSystem system = twoDevices();
    FileId file = system.addFile("f", 100 << 20, 0);
    MoveResult result = system.moveFileChunked(file, 1, 16 << 20);
    EXPECT_TRUE(result.moved);
    EXPECT_EQ(system.location(file), 1u);
    EXPECT_EQ(result.bytes, static_cast<uint64_t>(100 << 20));
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_EQ(system.migrationCount(), 1u);
}

TEST(ChunkedMigration, SameDeviceIsNoOp)
{
    StorageSystem system = twoDevices();
    FileId file = system.addFile("f", 1 << 20, 0);
    EXPECT_FALSE(system.moveFileChunked(file, 0, 1 << 19).moved);
}

TEST(ChunkedMigration, InvalidTargetsRejected)
{
    StorageSystem system = twoDevices();
    FileId file = system.addFile("f", 1 << 20, 0);
    EXPECT_FALSE(system.moveFileChunked(file, 9, 1 << 19).moved);
    system.device(1).setWritable(false);
    EXPECT_FALSE(system.moveFileChunked(file, 1, 1 << 19).moved);
}

TEST(ChunkedMigrationDeathTest, ZeroChunk)
{
    StorageSystem system = twoDevices();
    FileId file = system.addFile("f", 1 << 20, 0);
    EXPECT_DEATH(system.moveFileChunked(file, 1, 0), "chunk");
}

TEST(ChunkedMigration, CostSimilarToWholeFileOnQuietDevices)
{
    // On uncontended devices, chunking changes the cost only through
    // the self-load the migration itself builds up.
    StorageSystem whole_system = twoDevices();
    FileId whole = whole_system.addFile("f", 64 << 20, 0);
    double whole_seconds = whole_system.moveFile(whole, 1).seconds;

    StorageSystem chunked_system = twoDevices();
    FileId chunked = chunked_system.addFile("f", 64 << 20, 0);
    double chunked_seconds =
        chunked_system.moveFileChunked(chunked, 1, 8 << 20).seconds;

    EXPECT_GE(chunked_seconds, whole_seconds * 0.99);
    EXPECT_LE(chunked_seconds, whole_seconds * 2.0);
}

TEST(ChunkedMigration, LaterChunksSlowerUnderSelfLoad)
{
    // The migration's own busy time builds self-load, so a chunked
    // move of a huge file costs more than size / initial-bandwidth.
    StorageSystem system = twoDevices();
    FileId file = system.addFile("big", 1ULL << 30, 0);
    double ideal = static_cast<double>(1ULL << 30) / 1e9;
    MoveResult result = system.moveFileChunked(file, 1, 64 << 20);
    EXPECT_GT(result.seconds, ideal);
}

TEST(ChunkedMigration, ObserverFires)
{
    StorageSystem system = twoDevices();
    FileId file = system.addFile("f", 1 << 20, 0);
    int moves = 0;
    system.onMove([&](const MoveResult &) { ++moves; });
    system.moveFileChunked(file, 1, 1 << 18);
    EXPECT_EQ(moves, 1); // one logical move, however many chunks
}

TEST(ChunkedMigration, ChunkLargerThanFile)
{
    StorageSystem system = twoDevices();
    FileId file = system.addFile("f", 1 << 20, 0);
    MoveResult result = system.moveFileChunked(file, 1, 1ULL << 40);
    EXPECT_TRUE(result.moved);
}

} // namespace
} // namespace storage
} // namespace geo
