/**
 * @file
 * Property tests for the contention model: the monotonicities the
 * evaluation depends on (more load => less bandwidth; bigger files =>
 * costlier moves; bandwidth ordering preserved under equal load).
 */

#include <gtest/gtest.h>

#include "storage/system.hh"

namespace geo {
namespace storage {
namespace {

DeviceConfig
deviceWithLoad(double base_load, double read_bw = 1e9)
{
    DeviceConfig config;
    config.name = "dev";
    config.readBandwidth = read_bw;
    config.writeBandwidth = read_bw / 2;
    config.traffic.baseLoad = base_load;
    config.traffic.diurnalAmplitude = 0.0;
    config.traffic.burstProbability = 0.0;
    config.traffic.noiseAmplitude = 0.0;
    return config;
}

/** Bandwidth decreases monotonically with external load. */
class LoadMonotonicity : public testing::TestWithParam<double>
{
};

TEST_P(LoadMonotonicity, MoreLoadLessBandwidth)
{
    double load = GetParam();
    StorageDevice lighter(0, deviceWithLoad(load));
    StorageDevice heavier(1, deviceWithLoad(load + 0.5));
    EXPECT_GT(lighter.effectiveBandwidth(true, 0.0),
              heavier.effectiveBandwidth(true, 0.0));
}

INSTANTIATE_TEST_SUITE_P(Loads, LoadMonotonicity,
                         testing::Values(0.0, 0.1, 0.5, 1.0, 2.0, 5.0));

/** Transfer cost grows with file size. */
class MoveCostMonotonicity : public testing::TestWithParam<uint64_t>
{
};

TEST_P(MoveCostMonotonicity, BiggerFilesCostMore)
{
    uint64_t size = GetParam();
    StorageSystem small_system;
    small_system.addDevice(deviceWithLoad(0.0));
    small_system.addDevice(deviceWithLoad(0.0));
    FileId small = small_system.addFile("s", size, 0);
    double small_cost = small_system.moveFile(small, 1).seconds;

    StorageSystem big_system;
    big_system.addDevice(deviceWithLoad(0.0));
    big_system.addDevice(deviceWithLoad(0.0));
    FileId big = big_system.addFile("b", size * 2, 0);
    double big_cost = big_system.moveFile(big, 1).seconds;

    EXPECT_GT(big_cost, small_cost);
    EXPECT_NEAR(big_cost, 2.0 * small_cost, small_cost * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MoveCostMonotonicity,
                         testing::Values<uint64_t>(1 << 16, 1 << 20,
                                                   1 << 24, 1 << 28));

TEST(ContentionProperties, BandwidthOrderingPreservedUnderEqualLoad)
{
    // Device ranking by base bandwidth survives any common load level.
    for (double load : {0.0, 0.3, 1.0, 3.0}) {
        StorageDevice fast(0, deviceWithLoad(load, 4e9));
        StorageDevice medium(1, deviceWithLoad(load, 2e9));
        StorageDevice slow(2, deviceWithLoad(load, 1e9));
        double f = fast.effectiveBandwidth(true, 0.0);
        double m = medium.effectiveBandwidth(true, 0.0);
        double s = slow.effectiveBandwidth(true, 0.0);
        EXPECT_GT(f, m);
        EXPECT_GT(m, s);
    }
}

TEST(ContentionProperties, ThroughputMonotoneInAccessSize)
{
    // Fixed latency amortizes: bigger accesses measure higher
    // throughput on an uncontended device.
    StorageDevice dev(0, deviceWithLoad(0.0));
    double previous = 0.0;
    for (uint64_t bytes : {1ULL << 10, 1ULL << 14, 1ULL << 18,
                           1ULL << 22, 1ULL << 26}) {
        StorageDevice fresh(0, deviceWithLoad(0.0));
        DeviceAccess access = fresh.access(bytes, true, 0.0);
        EXPECT_GT(access.throughput, previous);
        previous = access.throughput;
    }
}

TEST(ContentionProperties, SaturationConvergesBelowBase)
{
    // Back-to-back accesses drive self-load toward ~1, halving the
    // effective bandwidth relative to an idle device.
    StorageDevice dev(0, deviceWithLoad(0.0));
    double t = 0.0;
    // Enough sustained traffic to pass several self-load time
    // constants (500+ seconds of busy time vs tau = 20 s).
    for (int i = 0; i < 600; ++i)
        t += dev.access(100 << 20, true, t).duration;
    double saturated = dev.effectiveBandwidth(true, t);
    StorageDevice idle(1, deviceWithLoad(0.0));
    double fresh = idle.effectiveBandwidth(true, 0.0);
    EXPECT_LT(saturated, fresh * 0.7);
    EXPECT_GT(saturated, fresh * 0.3);
}

TEST(ContentionProperties, ConcurrentAccessLoadsWithoutTime)
{
    StorageSystem system;
    system.addDevice(deviceWithLoad(0.0));
    FileId file = system.addFile("f", 100 << 20, 0);
    double before_clock = system.clock().now();
    AccessObservation obs = system.accessConcurrent(file, 50 << 20, true);
    EXPECT_DOUBLE_EQ(system.clock().now(), before_clock);
    EXPECT_GT(obs.throughput, 0.0);
    EXPECT_GT(obs.endTime, obs.startTime);
    // The device is now loaded even though no time passed.
    EXPECT_GT(system.device(0).selfLoad(before_clock), 0.0);
}

TEST(ContentionProperties, ConcurrentClientsSlowEachOther)
{
    StorageSystem system;
    system.addDevice(deviceWithLoad(0.0));
    FileId file = system.addFile("f", 1ULL << 30, 0);
    AccessObservation first = system.accessConcurrent(file, 100 << 20, true);
    for (int i = 0; i < 20; ++i)
        system.accessConcurrent(file, 100 << 20, true);
    AccessObservation crowded =
        system.accessConcurrent(file, 100 << 20, true);
    EXPECT_LT(crowded.throughput, first.throughput);
}

} // namespace
} // namespace storage
} // namespace geo
