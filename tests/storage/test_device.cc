/**
 * @file
 * Tests for the storage-device model.
 */

#include <gtest/gtest.h>

#include "storage/device.hh"

namespace geo {
namespace storage {
namespace {

DeviceConfig
quietDevice(double read_bw = 1e9, double write_bw = 5e8)
{
    DeviceConfig config;
    config.name = "dev";
    config.readBandwidth = read_bw;
    config.writeBandwidth = write_bw;
    config.accessLatency = 0.001;
    config.capacityBytes = 1000;
    config.traffic.baseLoad = 0.0;
    config.traffic.diurnalAmplitude = 0.0;
    config.traffic.burstProbability = 0.0;
    config.traffic.noiseAmplitude = 0.0;
    return config;
}

TEST(StorageDevice, AccessDurationMatchesBandwidth)
{
    StorageDevice dev(0, quietDevice());
    DeviceAccess access = dev.access(1000000, true, 0.0);
    // 1 MB at 1 GB/s = 1 ms transfer + 1 ms latency.
    EXPECT_NEAR(access.duration, 0.002, 1e-9);
    EXPECT_NEAR(access.throughput, 1000000.0 / 0.002, 1.0);
}

TEST(StorageDevice, WriteSlowerThanRead)
{
    StorageDevice dev(0, quietDevice());
    double t0 = 1000.0; // far enough apart to let self-load decay? no -
                        // use fresh devices instead.
    StorageDevice dev2(1, quietDevice());
    DeviceAccess read = dev.access(10000000, true, t0);
    DeviceAccess write = dev2.access(10000000, false, t0);
    EXPECT_GT(write.duration, read.duration);
}

TEST(StorageDevice, ExternalLoadSlowsAccesses)
{
    DeviceConfig loaded = quietDevice();
    loaded.traffic.baseLoad = 1.0; // halves the bandwidth
    StorageDevice quiet(0, quietDevice());
    StorageDevice busy(1, loaded);
    double quiet_bw = quiet.effectiveBandwidth(true, 0.0);
    double busy_bw = busy.effectiveBandwidth(true, 0.0);
    EXPECT_NEAR(busy_bw, quiet_bw / 2.0, quiet_bw * 0.01);
}

TEST(StorageDevice, SelfLoadBuildsUpUnderSaturation)
{
    StorageDevice dev(0, quietDevice());
    double t = 0.0;
    for (int i = 0; i < 200; ++i) {
        DeviceAccess access = dev.access(50000000, true, t);
        t += access.duration; // back-to-back accesses
    }
    EXPECT_GT(dev.selfLoad(t), 0.3) << "saturated device must self-load";
}

TEST(StorageDevice, SelfLoadDecaysWhenIdle)
{
    StorageDevice dev(0, quietDevice());
    dev.access(50000000, true, 0.0);
    double loaded = dev.selfLoad(0.1);
    double later = dev.selfLoad(1000.0);
    EXPECT_LT(later, loaded * 0.01);
}

TEST(StorageDevice, BusyTimeLoadsDevice)
{
    StorageDevice dev(0, quietDevice());
    double before = dev.effectiveBandwidth(true, 0.0);
    dev.addBusyTime(0.0, 60.0); // a long migration
    double after = dev.effectiveBandwidth(true, 0.0);
    EXPECT_LT(after, before);
}

TEST(StorageDevice, CapacityReserveRelease)
{
    StorageDevice dev(0, quietDevice());
    EXPECT_EQ(dev.freeBytes(), 1000u);
    EXPECT_TRUE(dev.reserve(600));
    EXPECT_EQ(dev.usedBytes(), 600u);
    EXPECT_FALSE(dev.reserve(600));
    EXPECT_TRUE(dev.reserve(400));
    EXPECT_EQ(dev.freeBytes(), 0u);
    dev.release(500);
    EXPECT_EQ(dev.usedBytes(), 500u);
    dev.release(99999); // over-release clamps to zero
    EXPECT_EQ(dev.usedBytes(), 0u);
}

TEST(StorageDevice, StatsAccumulate)
{
    StorageDevice dev(0, quietDevice());
    EXPECT_EQ(dev.accessCount(), 0u);
    dev.access(1000, true, 0.0);
    dev.access(2000, true, 10.0);
    EXPECT_EQ(dev.accessCount(), 2u);
    EXPECT_GT(dev.throughputStats().mean(), 0.0);
    dev.resetStats();
    EXPECT_EQ(dev.accessCount(), 0u);
}

TEST(StorageDevice, WritableFlag)
{
    DeviceConfig config = quietDevice();
    config.writable = false;
    StorageDevice dev(0, config);
    EXPECT_FALSE(dev.writable());
    dev.setWritable(true);
    EXPECT_TRUE(dev.writable());
}

TEST(StorageDeviceDeathTest, InvalidConfig)
{
    DeviceConfig config = quietDevice();
    config.readBandwidth = 0.0;
    EXPECT_DEATH(StorageDevice(0, config), "bandwidth");
    config = quietDevice();
    config.selfLoadTau = 0.0;
    EXPECT_DEATH(StorageDevice(0, config), "selfLoadTau");
}

} // namespace
} // namespace storage
} // namespace geo
