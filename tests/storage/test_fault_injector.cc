/**
 * @file
 * Tests for the fault injector: scheduled episodes must land exactly
 * where the schedule puts them, push the right health state onto the
 * devices, fail the right accesses and migrations, and replay
 * identically under the same seed.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "storage/fault_injector.hh"
#include "storage/system.hh"
#include "util/state_io.hh"

namespace geo {
namespace storage {
namespace {

DeviceConfig
quietDevice(const std::string &name, double bw = 1e9)
{
    DeviceConfig config;
    config.name = name;
    config.readBandwidth = bw;
    config.writeBandwidth = bw;
    config.capacityBytes = 1ULL << 30;
    config.traffic.baseLoad = 0.0;
    config.traffic.diurnalAmplitude = 0.0;
    config.traffic.burstProbability = 0.0;
    config.traffic.noiseAmplitude = 0.0;
    return config;
}

StorageSystem
twoDeviceSystem()
{
    StorageSystem system;
    system.addDevice(quietDevice("a"));
    system.addDevice(quietDevice("b"));
    return system;
}

FaultEvent
event(DeviceId device, FaultKind kind, double start, double duration,
      double magnitude = 0.0)
{
    FaultEvent ev;
    ev.device = device;
    ev.kind = kind;
    ev.start = start;
    ev.duration = duration;
    ev.magnitude = magnitude;
    return ev;
}

TEST(FaultEvent, ActiveWindow)
{
    FaultEvent ev = event(0, FaultKind::Outage, 10.0, 5.0);
    EXPECT_FALSE(ev.activeAt(9.99));
    EXPECT_TRUE(ev.activeAt(10.0));
    EXPECT_TRUE(ev.activeAt(14.99));
    EXPECT_FALSE(ev.activeAt(15.0));

    FaultEvent forever = event(0, FaultKind::Outage, 10.0, 0.0);
    EXPECT_FALSE(forever.activeAt(9.0));
    EXPECT_TRUE(forever.activeAt(1e9));
}

TEST(FaultInjector, OutageEpisodeTogglesAvailability)
{
    StorageSystem system = twoDeviceSystem();
    FaultInjectorConfig config;
    config.schedule.push_back(event(1, FaultKind::Outage, 10.0, 5.0));
    FaultInjector injector(system, config);
    system.attachFaultInjector(&injector);

    injector.advanceTo(5.0);
    EXPECT_TRUE(system.device(1).available());
    injector.advanceTo(12.0);
    EXPECT_TRUE(system.device(1).offline());
    EXPECT_TRUE(system.device(0).available()); // other device untouched
    injector.advanceTo(20.0);
    EXPECT_TRUE(system.device(1).available());
}

TEST(FaultInjector, PermanentOutageNeverRecovers)
{
    StorageSystem system = twoDeviceSystem();
    FaultInjectorConfig config;
    config.schedule.push_back(event(0, FaultKind::Outage, 10.0, 0.0));
    FaultInjector injector(system, config);
    injector.advanceTo(1e7);
    EXPECT_TRUE(system.device(0).offline());
}

TEST(FaultInjector, DegradationScalesEffectiveBandwidth)
{
    StorageSystem system = twoDeviceSystem();
    FaultInjectorConfig config;
    config.schedule.push_back(
        event(0, FaultKind::Degradation, 10.0, 10.0, 0.25));
    FaultInjector injector(system, config);

    injector.advanceTo(0.0);
    double healthy = system.device(0).effectiveBandwidth(true, 0.0);
    injector.advanceTo(12.0);
    EXPECT_TRUE(system.device(0).degraded());
    double degraded = system.device(0).effectiveBandwidth(true, 12.0);
    EXPECT_NEAR(degraded, healthy * 0.25, healthy * 1e-9);
    injector.advanceTo(25.0);
    EXPECT_FALSE(system.device(0).degraded());
}

TEST(FaultInjector, OverlappingDegradationsTakeTheWorst)
{
    StorageSystem system = twoDeviceSystem();
    FaultInjectorConfig config;
    config.schedule.push_back(
        event(0, FaultKind::Degradation, 0.0, 100.0, 0.5));
    config.schedule.push_back(
        event(0, FaultKind::Degradation, 10.0, 10.0, 0.2));
    FaultInjector injector(system, config);
    injector.advanceTo(15.0);
    EXPECT_DOUBLE_EQ(system.device(0).healthFactor(), 0.2);
    injector.advanceTo(30.0);
    EXPECT_DOUBLE_EQ(system.device(0).healthFactor(), 0.5);
}

TEST(FaultInjector, TransientErrorsFailAccesses)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f", 1 << 20, 0);
    FaultInjectorConfig config;
    // Probability 1: every access during the episode fails.
    config.schedule.push_back(
        event(0, FaultKind::TransientErrors, 0.0, 0.0, 1.0));
    FaultInjector injector(system, config);
    system.attachFaultInjector(&injector);

    AccessObservation obs = system.access(file, 1 << 16, true);
    EXPECT_TRUE(obs.failed);
    EXPECT_DOUBLE_EQ(obs.throughput, 0.0);
    EXPECT_GT(obs.duration(), 0.0); // error latency was charged
    EXPECT_EQ(system.device(0).failedAccessCount(), 1u);
    EXPECT_EQ(injector.injectedFailures(), 1u);
}

TEST(FaultInjector, FailedAccessesCollapseMeasuredMean)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f", 1 << 20, 0);
    for (int i = 0; i < 4; ++i)
        system.access(file, 1 << 16, true);
    double healthy_mean = system.device(0).throughputStats().mean();
    ASSERT_GT(healthy_mean, 0.0);

    FaultInjector injector(system, {});
    injector.addEvent(
        event(0, FaultKind::TransientErrors, 0.0, 0.0, 1.0));
    system.attachFaultInjector(&injector);
    for (int i = 0; i < 12; ++i)
        system.access(file, 1 << 16, true);
    EXPECT_LT(system.device(0).throughputStats().mean(),
              healthy_mean / 2.0);
}

TEST(FaultInjector, AccessOnOfflineDeviceFails)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f", 1 << 20, 1);
    FaultInjector injector(system, {});
    injector.addEvent(event(1, FaultKind::Outage, 0.0, 0.0));
    system.attachFaultInjector(&injector);
    AccessObservation obs = system.access(file, 1 << 16, true);
    EXPECT_TRUE(obs.failed);
    EXPECT_DOUBLE_EQ(obs.throughput, 0.0);
}

TEST(FaultInjector, MoveOntoOfflineTargetFails)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f", 8 << 20, 0);
    FaultInjector injector(system, {});
    injector.addEvent(event(1, FaultKind::Outage, 0.0, 0.0));
    system.attachFaultInjector(&injector);

    MoveResult result = system.moveFile(file, 1);
    EXPECT_FALSE(result.moved);
    EXPECT_TRUE(result.failed);
    EXPECT_EQ(result.reason, MoveFail::TargetOffline);
    EXPECT_TRUE(moveFailRetryable(result.reason));
    EXPECT_EQ(system.location(file), 0u);
    EXPECT_EQ(system.abortedMoveCount(), 1u);
    // The reservation on the target must have been released.
    EXPECT_EQ(system.device(1).usedBytes(), 0u);
}

TEST(FaultInjector, MoveFromOfflineSourceFails)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f", 8 << 20, 0);
    FaultInjector injector(system, {});
    injector.addEvent(event(0, FaultKind::Outage, 0.0, 0.0));
    system.attachFaultInjector(&injector);

    MoveResult result = system.moveFileChunked(file, 1, 1 << 20);
    EXPECT_FALSE(result.moved);
    EXPECT_TRUE(result.failed);
    EXPECT_EQ(result.reason, MoveFail::SourceOffline);
    EXPECT_EQ(system.device(1).usedBytes(), 0u);
}

TEST(FaultInjector, ChunkedMoveAbortAccountsPartialBytes)
{
    StorageSystem system = twoDeviceSystem();
    FileId file = system.addFile("f", 64 << 20, 0);
    FaultInjector injector(system, {});
    // The target dies shortly into the transfer: some chunks land,
    // the rest abort.
    injector.addEvent(event(1, FaultKind::Outage, 0.005, 0.0));
    system.attachFaultInjector(&injector);

    MoveResult result = system.moveFileChunked(file, 1, 1 << 20);
    EXPECT_FALSE(result.moved);
    EXPECT_TRUE(result.failed);
    EXPECT_GT(result.bytesCopied, 0u);
    EXPECT_LT(result.bytesCopied, 64u << 20);
    EXPECT_EQ(system.abortedBytes(), result.bytesCopied);
    EXPECT_EQ(system.location(file), 0u);
    EXPECT_EQ(system.device(1).usedBytes(), 0u);
}

TEST(FaultInjector, TransitionHooksFire)
{
    StorageSystem system = twoDeviceSystem();
    FaultInjectorConfig config;
    config.schedule.push_back(event(0, FaultKind::Outage, 10.0, 5.0));
    FaultInjector injector(system, config);

    std::vector<std::pair<bool, double>> transitions;
    injector.onTransition(
        [&](const FaultEvent &ev, bool active, double now) {
            EXPECT_EQ(ev.device, 0u);
            transitions.emplace_back(active, now);
        });
    injector.advanceTo(5.0);
    EXPECT_TRUE(transitions.empty());
    injector.advanceTo(11.0);
    injector.advanceTo(12.0); // no new transition
    injector.advanceTo(16.0);
    ASSERT_EQ(transitions.size(), 2u);
    EXPECT_TRUE(transitions[0].first);
    EXPECT_FALSE(transitions[1].first);
}

TEST(FaultInjector, AdvanceIsMonotonic)
{
    StorageSystem system = twoDeviceSystem();
    FaultInjectorConfig config;
    config.schedule.push_back(event(0, FaultKind::Outage, 10.0, 0.0));
    FaultInjector injector(system, config);
    injector.advanceTo(20.0);
    EXPECT_TRUE(system.device(0).offline());
    // Going "back in time" must not resurrect the device.
    injector.advanceTo(5.0);
    EXPECT_TRUE(system.device(0).offline());
}

TEST(FaultInjector, SameSeedSameFailures)
{
    auto run = [](uint64_t seed) {
        StorageSystem system;
        system.addDevice(quietDevice("a"));
        FileId file = system.addFile("f", 1 << 20, 0);
        FaultInjectorConfig config;
        config.seed = seed;
        config.schedule.push_back(
            event(0, FaultKind::TransientErrors, 0.0, 0.0, 0.3));
        FaultInjector injector(system, config);
        system.attachFaultInjector(&injector);
        std::vector<bool> outcomes;
        for (int i = 0; i < 64; ++i)
            outcomes.push_back(system.access(file, 1 << 12, true).failed);
        return outcomes;
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8)); // and the stream actually depends on it
}

TEST(FaultInjector, ErrorProbabilityReflectsActiveEpisode)
{
    StorageSystem system = twoDeviceSystem();
    FaultInjectorConfig config;
    config.schedule.push_back(
        event(1, FaultKind::TransientErrors, 10.0, 10.0, 0.4));
    FaultInjector injector(system, config);
    injector.advanceTo(5.0);
    EXPECT_DOUBLE_EQ(injector.errorProbability(1), 0.0);
    injector.advanceTo(15.0);
    EXPECT_DOUBLE_EQ(injector.errorProbability(1), 0.4);
    EXPECT_DOUBLE_EQ(injector.errorProbability(0), 0.0);
    injector.advanceTo(25.0);
    EXPECT_DOUBLE_EQ(injector.errorProbability(1), 0.0);
}

AccessObservation
observation(DeviceId device, double start = 100.0)
{
    AccessObservation obs;
    obs.file = 1;
    obs.device = device;
    obs.readBytes = 1 << 20;
    obs.startTime = start;
    obs.endTime = start + 0.5;
    obs.throughput = 2e6;
    return obs;
}

TEST(FaultInjector, TelemetryUntouchedWithoutActiveEpisode)
{
    StorageSystem system = twoDeviceSystem();
    FaultInjector injector(system, {});
    AccessObservation obs = observation(0);
    AccessObservation before = obs;
    bool duplicate = true;
    EXPECT_FALSE(injector.mutateTelemetry(obs, duplicate));
    EXPECT_FALSE(duplicate);
    EXPECT_DOUBLE_EQ(obs.startTime, before.startTime);
    EXPECT_DOUBLE_EQ(obs.endTime, before.endTime);
    EXPECT_DOUBLE_EQ(obs.throughput, before.throughput);
    EXPECT_EQ(injector.corruptedRecords(), 0u);
}

TEST(FaultInjector, StaleTelemetryShiftsTimestampsIntoThePast)
{
    StorageSystem system = twoDeviceSystem();
    FaultInjectorConfig config;
    config.schedule.push_back(
        event(0, FaultKind::StaleTelemetry, 0.0, 0.0, 300.0));
    FaultInjector injector(system, config);
    injector.advanceTo(100.0);
    AccessObservation obs = observation(0);
    bool duplicate = false;
    EXPECT_TRUE(injector.mutateTelemetry(obs, duplicate));
    EXPECT_DOUBLE_EQ(obs.startTime, 100.0 - 300.0);
    EXPECT_DOUBLE_EQ(obs.endTime, 100.5 - 300.0);
    // Duration and reward are untouched: only delivery was late.
    EXPECT_DOUBLE_EQ(obs.duration(), 0.5);
    EXPECT_DOUBLE_EQ(obs.throughput, 2e6);
    // The other device's telemetry is untouched.
    AccessObservation other = observation(1);
    EXPECT_FALSE(injector.mutateTelemetry(other, duplicate));
}

TEST(FaultInjector, ClockSkewShiftsTimestampsIntoTheFuture)
{
    StorageSystem system = twoDeviceSystem();
    FaultInjectorConfig config;
    config.schedule.push_back(
        event(1, FaultKind::ClockSkew, 50.0, 100.0, 7200.0));
    FaultInjector injector(system, config);
    injector.advanceTo(100.0);
    AccessObservation obs = observation(1);
    bool duplicate = false;
    EXPECT_TRUE(injector.mutateTelemetry(obs, duplicate));
    EXPECT_DOUBLE_EQ(obs.startTime, 100.0 + 7200.0);
    EXPECT_DOUBLE_EQ(obs.endTime, 100.5 + 7200.0);
    // Outside the episode window the shift is gone.
    injector.advanceTo(200.0);
    AccessObservation later = observation(1, 200.0);
    EXPECT_FALSE(injector.mutateTelemetry(later, duplicate));
    EXPECT_DOUBLE_EQ(later.startTime, 200.0);
}

TEST(FaultInjector, CorruptTelemetryIsSeededAndDeterministic)
{
    auto run = [](uint64_t seed) {
        StorageSystem system = twoDeviceSystem();
        FaultInjectorConfig config;
        config.seed = seed;
        config.schedule.push_back(
            event(0, FaultKind::CorruptTelemetry, 0.0, 0.0, 0.5));
        FaultInjector injector(system, config);
        injector.advanceTo(100.0);
        std::vector<double> throughputs;
        for (int i = 0; i < 64; ++i) {
            AccessObservation obs = observation(0);
            bool duplicate = false;
            injector.mutateTelemetry(obs, duplicate);
            throughputs.push_back(duplicate ? -42.0 : obs.throughput);
        }
        return std::make_pair(throughputs, injector.corruptedRecords());
    };
    auto a = run(7);
    auto b = run(7);
    EXPECT_EQ(a.first.size(), b.first.size());
    for (size_t i = 0; i < a.first.size(); ++i) {
        if (std::isnan(a.first[i]))
            EXPECT_TRUE(std::isnan(b.first[i])) << i;
        else
            EXPECT_DOUBLE_EQ(a.first[i], b.first[i]) << i;
    }
    EXPECT_EQ(a.second, b.second);
    EXPECT_GT(a.second, 0u); // p = 0.5 over 64 draws corrupts some
    EXPECT_LT(a.second, 64u);
    EXPECT_NE(a.second, run(8).second); // and the seed matters
}

TEST(FaultInjector, CorruptTelemetryConsumesNoRandomnessWhenInactive)
{
    // Mutating telemetry outside any corrupt episode must leave the
    // RNG untouched — the stream the transient-error draws see is
    // byte-identical with and without the telemetry path.
    StorageSystem system = twoDeviceSystem();
    FaultInjectorConfig config;
    config.schedule.push_back(
        event(0, FaultKind::CorruptTelemetry, 1000.0, 10.0, 1.0));
    config.schedule.push_back(
        event(0, FaultKind::TransientErrors, 0.0, 0.0, 0.5));
    FaultInjector injector(system, config);
    injector.advanceTo(100.0); // corrupt episode not yet active
    for (int i = 0; i < 16; ++i) {
        AccessObservation obs = observation(0);
        bool duplicate = false;
        EXPECT_FALSE(injector.mutateTelemetry(obs, duplicate));
    }
    std::vector<bool> with_mutation;
    for (int i = 0; i < 32; ++i)
        with_mutation.push_back(injector.shouldFailAccess(0));

    FaultInjector fresh(system, config);
    fresh.advanceTo(100.0);
    std::vector<bool> without_mutation;
    for (int i = 0; i < 32; ++i)
        without_mutation.push_back(fresh.shouldFailAccess(0));
    EXPECT_EQ(with_mutation, without_mutation);
}

TEST(FaultInjector, TelemetryFaultStateRoundTrips)
{
    StorageSystem system = twoDeviceSystem();
    FaultInjectorConfig config;
    config.schedule.push_back(
        event(0, FaultKind::CorruptTelemetry, 0.0, 0.0, 0.5));
    config.schedule.push_back(
        event(0, FaultKind::StaleTelemetry, 0.0, 0.0, 60.0));

    FaultInjector a(system, config);
    a.advanceTo(100.0);
    bool duplicate = false;
    for (int i = 0; i < 16; ++i) {
        AccessObservation obs = observation(0);
        a.mutateTelemetry(obs, duplicate);
    }
    std::ostringstream os;
    util::StateWriter w(os);
    a.saveState(w);

    StorageSystem system_b = twoDeviceSystem();
    FaultInjector b(system_b, config);
    std::istringstream is(os.str());
    util::StateReader r(is);
    b.loadState(r);
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(b.corruptedRecords(), a.corruptedRecords());
    EXPECT_DOUBLE_EQ(b.corruptProbability(0), 0.5);

    // The restored stream continues exactly where the original one is.
    for (int i = 0; i < 32; ++i) {
        AccessObservation oa = observation(0);
        AccessObservation ob = observation(0);
        bool da = false, db = false;
        a.mutateTelemetry(oa, da);
        b.mutateTelemetry(ob, db);
        EXPECT_EQ(da, db) << i;
        if (std::isnan(oa.throughput))
            EXPECT_TRUE(std::isnan(ob.throughput)) << i;
        else
            EXPECT_DOUBLE_EQ(oa.throughput, ob.throughput) << i;
        EXPECT_DOUBLE_EQ(oa.endTime, ob.endTime) << i;
        EXPECT_EQ(oa.readBytes, ob.readBytes) << i;
    }
}

TEST(FaultInjectorDeathTest, RejectsBadTelemetryEvents)
{
    StorageSystem system = twoDeviceSystem();
    FaultInjector injector(system, {});
    EXPECT_DEATH(injector.addEvent(
                     event(0, FaultKind::CorruptTelemetry, 0, 0, 1.5)),
                 "corruption probability");
    EXPECT_DEATH(injector.addEvent(
                     event(0, FaultKind::StaleTelemetry, 0, 0, 0.0)),
                 "must be positive");
    EXPECT_DEATH(injector.addEvent(
                     event(0, FaultKind::ClockSkew, 0, 0, -5.0)),
                 "must be positive");
}

TEST(FaultInjectorDeathTest, RejectsBadEvents)
{
    StorageSystem system = twoDeviceSystem();
    FaultInjector injector(system, {});
    EXPECT_DEATH(injector.addEvent(
                     event(9, FaultKind::Outage, 0.0, 0.0)),
                 "device");
    EXPECT_DEATH(injector.addEvent(
                     event(0, FaultKind::TransientErrors, 0, 0, 1.5)),
                 "probability");
    EXPECT_DEATH(injector.addEvent(
                     event(0, FaultKind::Degradation, 0, 0, 0.0)),
                 "factor");
    EXPECT_DEATH(injector.addEvent(
                     event(0, FaultKind::Degradation, 0, 0, 1.5)),
                 "factor");
}

TEST(FaultInjectorDeathTest, DeviceValidation)
{
    StorageSystem system = twoDeviceSystem();
    StorageDevice &dev = system.device(0);
    EXPECT_DEATH(dev.setHealthFactor(0.0), "health");
    EXPECT_DEATH(dev.setHealthFactor(1.5), "health");
}

} // namespace
} // namespace storage
} // namespace geo
