/**
 * @file
 * Unit tests for the logging helpers.
 */

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace geo {
namespace {

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("plain"), "plain");
    EXPECT_EQ(strprintf("%d + %d = %d", 2, 3, 5), "2 + 3 = 5");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strprintf("%s/%s", "a", "b"), "a/b");
}

TEST(Logging, StrprintfLongString)
{
    std::string big(5000, 'x');
    std::string out = strprintf("%s", big.c_str());
    EXPECT_EQ(out.size(), big.size());
    EXPECT_EQ(out, big);
}

TEST(Logging, LogLevelRoundTrip)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(old);
}

TEST(Logging, LevelTiersAreOrdered)
{
    EXPECT_LT(static_cast<int>(LogLevel::Quiet),
              static_cast<int>(LogLevel::Normal));
    EXPECT_LT(static_cast<int>(LogLevel::Normal),
              static_cast<int>(LogLevel::Verbose));
    EXPECT_LT(static_cast<int>(LogLevel::Verbose),
              static_cast<int>(LogLevel::Debug));
}

TEST(Logging, DebugGatedByLevel)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Verbose);
    testing::internal::CaptureStderr();
    debug("hidden %d", 1);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    setLogLevel(LogLevel::Debug);
    testing::internal::CaptureStderr();
    debug("visible %d", 2);
    inform("still informative"); // Debug implies Verbose
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("debug: visible 2\n"), std::string::npos);
    EXPECT_NE(out.find("info: still informative\n"), std::string::npos);
    setLogLevel(old);
}

TEST(Logging, ConcurrentWritersEmitWholeLines)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Normal);
    testing::internal::CaptureStderr();
    constexpr int kThreads = 4;
    constexpr int kMessages = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t]() {
            for (int i = 0; i < kMessages; ++i)
                warn("thread %d message %d suffix", t, i);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    std::string out = testing::internal::GetCapturedStderr();
    setLogLevel(old);

    // Concurrent writers may interleave *lines*, never characters:
    // every line must be one complete message.
    size_t lines = 0;
    std::istringstream stream(out);
    std::string line;
    while (std::getline(stream, line)) {
        ++lines;
        ASSERT_EQ(line.rfind("warn: thread ", 0), 0u) << line;
        ASSERT_GE(line.size(), 7u);
        ASSERT_EQ(line.substr(line.size() - 7), " suffix") << line;
    }
    EXPECT_EQ(lines, static_cast<size_t>(kThreads) * kMessages);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "bad config");
}

} // namespace
} // namespace geo
