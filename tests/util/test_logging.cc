/**
 * @file
 * Unit tests for the logging helpers.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace geo {
namespace {

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("plain"), "plain");
    EXPECT_EQ(strprintf("%d + %d = %d", 2, 3, 5), "2 + 3 = 5");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strprintf("%s/%s", "a", "b"), "a/b");
}

TEST(Logging, StrprintfLongString)
{
    std::string big(5000, 'x');
    std::string out = strprintf("%s", big.c_str());
    EXPECT_EQ(out.size(), big.size());
    EXPECT_EQ(out, big);
}

TEST(Logging, LogLevelRoundTrip)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(old);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "bad config");
}

} // namespace
} // namespace geo
