/**
 * @file
 * Unit and property tests for the smoothing helpers.
 */

#include <gtest/gtest.h>

#include "util/random.hh"
#include "util/smoothing.hh"

namespace geo {
namespace {

TEST(MovingAverage, WindowOneIsIdentity)
{
    std::vector<double> series = {3.0, 1.0, 4.0, 1.0, 5.0};
    EXPECT_EQ(movingAverage(series, 1), series);
}

TEST(MovingAverage, KnownWindow)
{
    std::vector<double> series = {1.0, 2.0, 3.0, 4.0};
    std::vector<double> expected = {1.0, 1.5, 2.5, 3.5};
    std::vector<double> out = movingAverage(series, 2);
    ASSERT_EQ(out.size(), expected.size());
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_DOUBLE_EQ(out[i], expected[i]);
}

TEST(MovingAverage, PreservesLength)
{
    std::vector<double> series(37, 1.0);
    EXPECT_EQ(movingAverage(series, 8).size(), series.size());
}

TEST(MovingAverage, ConstantSeriesUnchanged)
{
    std::vector<double> series(20, 5.5);
    for (double v : movingAverage(series, 7))
        EXPECT_DOUBLE_EQ(v, 5.5);
}

TEST(MovingAverageDeathTest, ZeroWindowPanics)
{
    std::vector<double> series = {1.0};
    EXPECT_DEATH(movingAverage(series, 0), "window");
}

TEST(CumulativeAverage, Known)
{
    std::vector<double> out = cumulativeAverage({2.0, 4.0, 6.0});
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[0], 2.0);
    EXPECT_DOUBLE_EQ(out[1], 3.0);
    EXPECT_DOUBLE_EQ(out[2], 4.0);
}

TEST(ExponentialMovingAverage, AlphaOneIsIdentity)
{
    std::vector<double> series = {3.0, 1.0, 4.0};
    EXPECT_EQ(exponentialMovingAverage(series, 1.0), series);
}

TEST(ExponentialMovingAverage, ConvergesToConstant)
{
    std::vector<double> series(100, 0.0);
    series[0] = 1.0;
    for (size_t i = 1; i < series.size(); ++i)
        series[i] = 10.0;
    std::vector<double> out = exponentialMovingAverage(series, 0.3);
    EXPECT_NEAR(out.back(), 10.0, 1e-6);
}

TEST(ExponentialMovingAverageDeathTest, BadAlpha)
{
    std::vector<double> series = {1.0};
    EXPECT_DEATH(exponentialMovingAverage(series, 0.0), "alpha");
    EXPECT_DEATH(exponentialMovingAverage(series, 1.5), "alpha");
}

TEST(MovingAverageFilter, MatchesBatchVersion)
{
    Rng rng(31);
    std::vector<double> series;
    for (int i = 0; i < 200; ++i)
        series.push_back(rng.uniform(0.0, 100.0));
    for (size_t window : {1u, 3u, 8u, 50u}) {
        MovingAverageFilter filter(window);
        std::vector<double> batch = movingAverage(series, window);
        for (size_t i = 0; i < series.size(); ++i)
            EXPECT_NEAR(filter.push(series[i]), batch[i], 1e-9)
                << "window " << window << " index " << i;
    }
}

TEST(MovingAverageFilter, ResetClears)
{
    MovingAverageFilter filter(4);
    filter.push(10.0);
    filter.push(20.0);
    filter.reset();
    EXPECT_EQ(filter.fill(), 0u);
    EXPECT_DOUBLE_EQ(filter.value(), 0.0);
    EXPECT_DOUBLE_EQ(filter.push(6.0), 6.0);
}

/**
 * Property (paper Section V-E): a moving average keeps short-term
 * dips visible while the cumulative average washes them out.
 */
TEST(Smoothing, MovingAverageKeepsShortTermDips)
{
    // Steady series with a sharp dip near the end.
    std::vector<double> series(1000, 100.0);
    for (size_t i = 950; i < 1000; ++i)
        series[i] = 10.0;
    double ma = movingAverage(series, 10).back();
    double ca = cumulativeAverage(series).back();
    EXPECT_LT(ma, 20.0);  // dip clearly visible
    EXPECT_GT(ca, 90.0);  // dip erased
}

} // namespace
} // namespace geo
