/**
 * @file
 * Unit tests for the simulated clock and split timestamps.
 */

#include <gtest/gtest.h>

#include "util/sim_clock.hh"

namespace geo {
namespace {

TEST(SimClock, StartsAtZero)
{
    SimClock clock;
    EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(SimClock, AdvanceAccumulates)
{
    SimClock clock;
    clock.advance(1.5);
    clock.advance(0.25);
    EXPECT_DOUBLE_EQ(clock.now(), 1.75);
}

TEST(SimClock, NegativeAdvanceIgnored)
{
    SimClock clock;
    clock.advance(2.0);
    clock.advance(-1.0);
    EXPECT_DOUBLE_EQ(clock.now(), 2.0);
}

TEST(SimClock, AdvanceToMonotonic)
{
    SimClock clock;
    clock.advanceTo(5.0);
    EXPECT_DOUBLE_EQ(clock.now(), 5.0);
    clock.advanceTo(3.0); // backwards jump ignored
    EXPECT_DOUBLE_EQ(clock.now(), 5.0);
}

TEST(SimClock, Reset)
{
    SimClock clock;
    clock.advance(9.0);
    clock.reset();
    EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(SplitTime, SplitsSecondsAndMillis)
{
    SplitTime st = splitSeconds(12.345);
    EXPECT_EQ(st.seconds, 12);
    EXPECT_EQ(st.millis, 345);
}

TEST(SplitTime, WholeSeconds)
{
    SplitTime st = splitSeconds(7.0);
    EXPECT_EQ(st.seconds, 7);
    EXPECT_EQ(st.millis, 0);
}

TEST(SplitTime, RoundingOverflowCarries)
{
    // 1.9996 rounds to 2000 ms, which must carry into the seconds.
    SplitTime st = splitSeconds(1.9996);
    EXPECT_EQ(st.seconds, 2);
    EXPECT_EQ(st.millis, 0);
}

TEST(SplitTime, RoundTripsWithinHalfMilli)
{
    for (double t : {0.0, 0.001, 1.2345, 99.9994, 12345.678}) {
        SplitTime st = splitSeconds(t);
        EXPECT_NEAR(st.toSeconds(), t, 0.0005) << "t = " << t;
    }
}

} // namespace
} // namespace geo
