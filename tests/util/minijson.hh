/**
 * @file
 * A deliberately tiny recursive-descent JSON parser for tests: enough
 * to check well-formedness of the metrics/trace exports and to pull
 * scalar values back out, with no third-party dependency.
 */

#ifndef GEO_TESTS_MINIJSON_HH
#define GEO_TESTS_MINIJSON_HH

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>

namespace geo {
namespace testjson {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    /** Parse the whole document; false on any syntax error. */
    bool
    valid()
    {
        pos_ = 0;
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    const std::string &text_;
    size_t pos_ = 0;

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool
    string()
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            if (std::isdigit(static_cast<unsigned char>(text_[pos_])))
                digits = true;
            ++pos_;
        }
        return digits && pos_ > start;
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }
};

/** Whole-document well-formedness check. */
inline bool
validJson(const std::string &text)
{
    return Parser(text).valid();
}

/**
 * Pull the numeric value of `"key": <number>` after the first match of
 * the quoted key. Returns NaN when absent (good enough for flat test
 * lookups; keys in nested objects must be unique in the document).
 */
inline double
numberAfterKey(const std::string &text, const std::string &key)
{
    std::string needle = "\"" + key + "\":";
    size_t at = text.find(needle);
    if (at == std::string::npos)
        return std::nan("");
    return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

} // namespace testjson
} // namespace geo

#endif // GEO_TESTS_MINIJSON_HH
