/**
 * @file
 * Unit tests for the trace-event collector: span recording, the two
 * time domains, buffer-full dropping and JSON well-formedness under
 * concurrent writers.
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "minijson.hh"
#include "util/trace_event.hh"

namespace geo {
namespace {

using util::ScopedSpan;
using util::TimeDomain;
using util::TraceCollector;

TEST(TraceCollector, DisabledByDefaultRecordsNothing)
{
    TraceCollector collector;
    EXPECT_FALSE(collector.enabled());
    collector.completeEvent("cat", "name", TimeDomain::Host, 0.0, 1.0);
    EXPECT_EQ(collector.eventCount(), 0u);
}

TEST(TraceCollector, RecordsWhenEnabled)
{
    TraceCollector collector;
    collector.enable(16);
    collector.completeEvent("cycle", "train", TimeDomain::Host, 10.0,
                            5.0);
    collector.instantEvent("fault", "begins", TimeDomain::Sim, 120.0);
    collector.counterEvent("queue_depth", TimeDomain::Host, 11.0, 3.0);
    EXPECT_EQ(collector.eventCount(), 3u);
    collector.disable();
    collector.completeEvent("cycle", "train", TimeDomain::Host, 20.0,
                            1.0);
    EXPECT_EQ(collector.eventCount(), 3u); // kept, but no new events
}

TEST(TraceCollector, JsonIsWellFormedAndCarriesBothDomains)
{
    TraceCollector collector;
    collector.enable(16);
    collector.completeEvent("cycle", "predict", TimeDomain::Host, 100.0,
                            50.0);
    // Sim timestamps are in seconds and must be scaled to us (x 1e6).
    collector.completeEvent("migrate", "move", TimeDomain::Sim, 2.0,
                            0.5);
    std::string json = collector.toJson();
    ASSERT_TRUE(testjson::validJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Both process metadata records are present.
    EXPECT_NE(json.find("geomancy host (steady clock)"),
              std::string::npos);
    EXPECT_NE(json.find("geomancy sim (SimClock)"), std::string::npos);
    // The sim span lands on pid 2 with scaled timestamps.
    EXPECT_NE(json.find("\"pid\":2,\"tid\":0,\"ts\":2e+06"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"dur\":500000"), std::string::npos) << json;
    // The host span keeps its microsecond values.
    EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
}

TEST(TraceCollector, EmptyTraceIsValidJson)
{
    TraceCollector collector;
    collector.enable(4);
    EXPECT_TRUE(testjson::validJson(collector.toJson()));
}

TEST(TraceCollector, FullBufferDropsInsteadOfGrowing)
{
    TraceCollector collector;
    collector.enable(8);
    for (int i = 0; i < 50; ++i)
        collector.completeEvent("cat", "span", TimeDomain::Host,
                                static_cast<double>(i), 1.0);
    EXPECT_LE(collector.eventCount(), 8u);
    EXPECT_EQ(collector.eventCount() + collector.droppedCount(), 50u);
    EXPECT_TRUE(testjson::validJson(collector.toJson()));
}

TEST(TraceCollector, ReenableClearsOldEvents)
{
    TraceCollector collector;
    collector.enable(8);
    collector.completeEvent("a", "b", TimeDomain::Host, 0.0, 1.0);
    collector.enable(8);
    EXPECT_EQ(collector.eventCount(), 0u);
    EXPECT_EQ(collector.droppedCount(), 0u);
}

TEST(TraceCollector, ConcurrentSpansProduceWellFormedJson)
{
    TraceCollector &collector = TraceCollector::global();
    collector.enable(1 << 12);
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 300;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t]() {
            for (int i = 0; i < kSpansPerThread; ++i) {
                ScopedSpan span("test", "concurrent");
                if (i % 3 == 0)
                    util::traceSimSpan("test", "sim_side",
                                       static_cast<double>(t * 1000 + i),
                                       0.25);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    collector.disable();

    EXPECT_EQ(collector.eventCount() + collector.droppedCount(),
              static_cast<size_t>(kThreads) * (kSpansPerThread +
                                               kSpansPerThread / 3));
    std::string json = collector.toJson();
    EXPECT_TRUE(testjson::validJson(json));
    collector.clear();
}

TEST(ScopedSpan, MeasuresNonNegativeDurations)
{
    TraceCollector &collector = TraceCollector::global();
    collector.enable(16);
    {
        ScopedSpan span("test", "scope");
    }
    collector.disable();
    ASSERT_EQ(collector.eventCount(), 1u);
    std::string json = collector.toJson();
    EXPECT_NE(json.find("\"name\":\"scope\""), std::string::npos);
    EXPECT_EQ(json.find("\"dur\":-"), std::string::npos) << json;
    collector.clear();
}

#if GEO_TRACE
TEST(TraceMacros, SpanMacroRecordsIntoGlobal)
{
    TraceCollector &collector = TraceCollector::global();
    collector.enable(16);
    {
        GEO_SPAN("macro", "scope");
        GEO_SIM_SPAN("macro", "sim", 1.0, 2.0);
        GEO_TRACE_INSTANT("macro", "mark", util::TimeDomain::Sim, 3.0);
    }
    collector.disable();
    EXPECT_EQ(collector.eventCount(), 3u);
    collector.clear();
}
#endif

} // namespace
} // namespace geo
