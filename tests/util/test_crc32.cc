/**
 * @file
 * Tests for the CRC32 checksum and the atomic file-write helpers the
 * checkpoint subsystem is built on.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/crc32.hh"
#include "util/fs_atomic.hh"

namespace geo {
namespace util {
namespace {

TEST(Crc32, CheckVector)
{
    // The standard CRC-32 check value (zlib/PNG polynomial).
    EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero)
{
    EXPECT_EQ(crc32(std::string()), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    std::string a = "the quick brown ";
    std::string b = "fox jumps over the lazy dog";
    uint32_t split = crc32(b.data(), b.size(), crc32(a));
    EXPECT_EQ(split, crc32(a + b));
}

TEST(Crc32, SensitiveToSingleBitFlips)
{
    std::string data(256, '\x5a');
    uint32_t clean = crc32(data);
    for (size_t i : {size_t(0), data.size() / 2, data.size() - 1}) {
        std::string flipped = data;
        flipped[i] ^= 0x01;
        EXPECT_NE(crc32(flipped), clean) << "flip at " << i;
    }
}

TEST(FsAtomic, WriteReadRoundTrip)
{
    std::string path =
        (std::filesystem::temp_directory_path() / "geo_fs_atomic_rt.txt")
            .string();
    std::string content = "line one\nline two\0binary", out;
    content += std::string(1, '\0');
    ASSERT_TRUE(writeFileAtomic(path, content));
    ASSERT_TRUE(readFileAll(path, out));
    EXPECT_EQ(out, content);
    std::filesystem::remove(path);
}

TEST(FsAtomic, OverwriteReplacesWholeFile)
{
    std::string path =
        (std::filesystem::temp_directory_path() / "geo_fs_atomic_ow.txt")
            .string();
    ASSERT_TRUE(writeFileAtomic(path, "a much longer first version"));
    ASSERT_TRUE(writeFileAtomic(path, "short"));
    std::string out;
    ASSERT_TRUE(readFileAll(path, out));
    EXPECT_EQ(out, "short");
    std::filesystem::remove(path);
}

TEST(FsAtomic, LeavesNoTempFilesBehind)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "geo_fs_atomic_dir";
    fs::create_directories(dir);
    ASSERT_TRUE(writeFileAtomic((dir / "file.txt").string(), "payload"));
    size_t entries = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        (void)entry;
        ++entries;
    }
    EXPECT_EQ(entries, 1u); // just file.txt, no .tmp.* residue
    fs::remove_all(dir);
}

TEST(FsAtomic, ReadMissingFileFails)
{
    std::string out = "sentinel";
    EXPECT_FALSE(readFileAll("/nonexistent/geo/missing.txt", out));
}

} // namespace
} // namespace util
} // namespace geo
