/**
 * @file
 * FlightRecorder tests: ring semantics (overwrite-oldest, bounded),
 * concurrent lock-free appends from multiple threads, dump format,
 * and crash-dump file placement.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/flight_recorder.hh"

namespace geo {
namespace util {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(FlightRecorder, RecordsInOrder)
{
    auto recorder = std::make_unique<FlightRecorder>();
    recorder->record(FlightKind::PhaseBegin, 1.0, 7, 0);
    recorder->record(FlightKind::PhaseEnd, 2.0, 7, 0);
    recorder->record(FlightKind::SafeModeEnter, 3.0, 9);

    EXPECT_EQ(recorder->recorded(), 3u);
    EXPECT_EQ(recorder->size(), 3u);
    std::vector<FlightEvent> events = recorder->snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, FlightKind::PhaseBegin);
    EXPECT_EQ(events[0].a0, 7u);
    EXPECT_EQ(events[1].kind, FlightKind::PhaseEnd);
    EXPECT_EQ(events[2].kind, FlightKind::SafeModeEnter);
    EXPECT_EQ(events[2].sim, 3.0);
    // Sequence numbers are assigned in record order.
    EXPECT_LT(events[0].seq, events[1].seq);
    EXPECT_LT(events[1].seq, events[2].seq);
}

TEST(FlightRecorder, RingOverwritesOldest)
{
    auto recorder = std::make_unique<FlightRecorder>();
    const size_t total = FlightRecorder::kCapacity + 100;
    for (size_t i = 0; i < total; ++i)
        recorder->record(FlightKind::CheckpointWrite, 0.0, i);

    EXPECT_EQ(recorder->recorded(), total);
    EXPECT_EQ(recorder->size(), FlightRecorder::kCapacity);
    std::vector<FlightEvent> events = recorder->snapshot();
    ASSERT_EQ(events.size(), FlightRecorder::kCapacity);
    // Oldest surviving event is the one that displaced slot 0's first
    // occupant; newest is the last recorded.
    EXPECT_EQ(events.front().a0, 100u);
    EXPECT_EQ(events.back().a0, total - 1);
}

TEST(FlightRecorder, ClearForgetsEverything)
{
    auto recorder = std::make_unique<FlightRecorder>();
    recorder->record(FlightKind::BreakerTrip, 1.0, 2, 3);
    recorder->clear();
    EXPECT_EQ(recorder->recorded(), 0u);
    EXPECT_EQ(recorder->size(), 0u);
    EXPECT_TRUE(recorder->snapshot().empty());
}

/** Four writers hammer the ring concurrently; every event recorded
 *  must come out of the snapshot whole — right kind, self-consistent
 *  payload — and the total count must be exact. Torn slots (a writer
 *  caught mid-store) may be skipped but never surfaced corrupted. */
TEST(FlightRecorder, ConcurrentAppendFromFourThreads)
{
    auto recorder = std::make_unique<FlightRecorder>();
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 20000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&recorder, t] {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                // a1 encodes the writer, a2 re-encodes (a0, a1) so a
                // torn slot that mixed two writers is detectable.
                recorder->record(FlightKind::QuarantineReject,
                                 static_cast<double>(t), i,
                                 static_cast<uint64_t>(t),
                                 i * kThreads + static_cast<uint64_t>(t));
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(recorder->recorded(), kThreads * kPerThread);
    std::vector<FlightEvent> events = recorder->snapshot();
    EXPECT_LE(events.size(), FlightRecorder::kCapacity);
    EXPECT_GT(events.size(), 0u);
    uint64_t last_seq = 0;
    for (const FlightEvent &ev : events) {
        EXPECT_EQ(ev.kind, FlightKind::QuarantineReject);
        EXPECT_LT(ev.a1, static_cast<uint64_t>(kThreads));
        // Payload fields all come from the same record() call.
        EXPECT_EQ(ev.a2, ev.a0 * kThreads + ev.a1);
        EXPECT_EQ(static_cast<uint64_t>(ev.sim), ev.a1);
        // Snapshot is oldest-first by sequence.
        EXPECT_GT(ev.seq, last_seq);
        last_seq = ev.seq;
    }
}

TEST(FlightRecorder, DumpFormat)
{
    auto recorder = std::make_unique<FlightRecorder>();
    recorder->record(FlightKind::SafeModeEnter, 12.5, 4);
    recorder->record(FlightKind::CrashPoint, 13.0, 2, 5);

    std::string path =
        (std::filesystem::temp_directory_path() / "geo_flight_dump.txt")
            .string();
    ASSERT_TRUE(recorder->dumpToFile(path));
    std::string text = slurp(path);
    std::remove(path.c_str());

    std::istringstream lines(text);
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_EQ(header, "geo-flight-1 recorded=2 capacity=4096");
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("safe_mode_enter"), std::string::npos) << line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("crash_point"), std::string::npos) << line;
    EXPECT_FALSE(std::getline(lines, line)) << "extra line: " << line;
}

TEST(FlightRecorder, CrashDumpLandsInDumpDir)
{
    std::string dir = (std::filesystem::temp_directory_path() /
                       "geo_flight_crashdir")
                          .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    auto recorder = std::make_unique<FlightRecorder>();
    recorder->record(FlightKind::Restore, 1.0, 3);
    // No directory registered: refused, nothing written.
    EXPECT_FALSE(recorder->crashDump("test"));
    recorder->setDumpDir(dir);
    EXPECT_TRUE(recorder->dumpDirSet());
    ASSERT_TRUE(recorder->crashDump("test"));

    bool found = false;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        std::string name = entry.path().filename().string();
        if (name.rfind("flight-test-", 0) == 0) {
            found = true;
            EXPECT_EQ(slurp(entry.path().string())
                          .rfind("geo-flight-1 ", 0),
                      0u);
        }
    }
    EXPECT_TRUE(found);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace util
} // namespace geo
