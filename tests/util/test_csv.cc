/**
 * @file
 * Unit tests for CSV reading/writing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hh"

namespace geo {
namespace {

TEST(Csv, EscapePlainUnchanged)
{
    EXPECT_EQ(csvEscape("hello"), "hello");
}

TEST(Csv, EscapeCommaQuoted)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
}

TEST(Csv, EscapeQuoteDoubled)
{
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WriteRow)
{
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeRow({"a", "b,c", "d"});
    EXPECT_EQ(os.str(), "a,\"b,c\",d\n");
}

TEST(Csv, NumericRowRoundTrips)
{
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeNumericRow({1.5, -2.25, 0.1});
    std::vector<std::string> fields =
        parseCsvLine(os.str().substr(0, os.str().size() - 1));
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_DOUBLE_EQ(std::stod(fields[0]), 1.5);
    EXPECT_DOUBLE_EQ(std::stod(fields[1]), -2.25);
    EXPECT_DOUBLE_EQ(std::stod(fields[2]), 0.1);
}

TEST(Csv, ParseSimpleLine)
{
    std::vector<std::string> fields = parseCsvLine("a,b,c");
    EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Csv, ParseQuotedComma)
{
    std::vector<std::string> fields = parseCsvLine("\"a,b\",c");
    EXPECT_EQ(fields, (std::vector<std::string>{"a,b", "c"}));
}

TEST(Csv, ParseEscapedQuote)
{
    std::vector<std::string> fields = parseCsvLine("\"say \"\"hi\"\"\"");
    ASSERT_EQ(fields.size(), 1u);
    EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(Csv, ParseEmptyFields)
{
    std::vector<std::string> fields = parseCsvLine("a,,c,");
    EXPECT_EQ(fields, (std::vector<std::string>{"a", "", "c", ""}));
}

TEST(Csv, ParseIgnoresCarriageReturn)
{
    std::vector<std::string> fields = parseCsvLine("a,b\r");
    EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
}

TEST(Csv, ParseDocument)
{
    auto rows = parseCsv("h1,h2\n1,2\n3,4\n");
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0][0], "h1");
    EXPECT_EQ(rows[2][1], "4");
}

TEST(Csv, RoundTripArbitraryContent)
{
    std::vector<std::string> original = {"plain", "with,comma",
                                         "with\"quote", "multi\nline"};
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeRow(original);
    // Multi-line fields stay quoted; parse the full document line by
    // line is not enough, so parse the single logical line directly.
    std::string text = os.str();
    text.pop_back(); // trailing newline
    // parseCsvLine does not handle embedded newlines (documented);
    // check the quoting at least protects commas and quotes.
    std::vector<std::string> fields = parseCsvLine("plain,\"with,comma\"");
    EXPECT_EQ(fields[1], "with,comma");
}

} // namespace
} // namespace geo
