/**
 * @file
 * Unit and property tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/random.hh"
#include "util/stats.hh"

namespace geo {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(123), b(124);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-5.0, 3.0);
        EXPECT_GE(u, -5.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(3);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.uniformInt(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u); // all values hit
}

TEST(Rng, UniformIntSingleValue)
{
    Rng rng(4);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(7, 7), 7);
}

TEST(RngDeathTest, UniformIntBadRange)
{
    Rng rng(5);
    EXPECT_DEATH(rng.uniformInt(3, 2), "lo");
}

TEST(Rng, NormalMoments)
{
    Rng rng(6);
    StatAccumulator acc;
    for (int i = 0; i < 50000; ++i)
        acc.add(rng.normal());
    EXPECT_NEAR(acc.mean(), 0.0, 0.03);
    EXPECT_NEAR(acc.stddev(), 1.0, 0.03);
}

TEST(Rng, NormalScaled)
{
    Rng rng(7);
    StatAccumulator acc;
    for (int i = 0; i < 50000; ++i)
        acc.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(acc.mean(), 10.0, 0.1);
    EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(8);
    StatAccumulator acc;
    for (int i = 0; i < 50000; ++i)
        acc.add(rng.exponential(2.0));
    EXPECT_NEAR(acc.mean(), 0.5, 0.02);
    EXPECT_GE(acc.min(), 0.0);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(10);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(11);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[rng.weightedIndex(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) /
                    static_cast<double>(counts[0]),
                3.0, 0.3);
}

TEST(RngDeathTest, WeightedIndexAllZero)
{
    Rng rng(12);
    std::vector<double> weights = {0.0, 0.0};
    EXPECT_DEATH(rng.weightedIndex(weights), "zero");
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(13);
    std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = items;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, items);
}

TEST(Rng, ForkIndependent)
{
    Rng parent(14);
    Rng child = parent.fork();
    // Child diverges from the parent's continued stream.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (parent() == child())
            ++same;
    EXPECT_LT(same, 3);
}

/** Property sweep: uniformInt stays in bounds for many ranges. */
class RngRangeTest : public testing::TestWithParam<int64_t>
{
};

TEST_P(RngRangeTest, UniformIntBounds)
{
    int64_t hi = GetParam();
    Rng rng(static_cast<uint64_t>(hi) + 99);
    for (int i = 0; i < 500; ++i) {
        int64_t v = rng.uniformInt(0, hi);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, hi);
    }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngRangeTest,
                         testing::Values<int64_t>(0, 1, 2, 5, 63, 64, 65,
                                                  1000, 1'000'000'000));

} // namespace
} // namespace geo
