/**
 * @file
 * Unit and property tests for the statistics accumulators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hh"
#include "util/stats.hh"

namespace geo {
namespace {

TEST(StatAccumulator, EmptyDefaults)
{
    StatAccumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.stddev(), 0.0);
    EXPECT_EQ(acc.min(), 0.0);
    EXPECT_EQ(acc.max(), 0.0);
}

TEST(StatAccumulator, KnownValues)
{
    StatAccumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(StatAccumulator, SampleVarianceDenominator)
{
    StatAccumulator acc;
    acc.add(1.0);
    acc.add(3.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 1.0);       // N
    EXPECT_DOUBLE_EQ(acc.sampleVariance(), 2.0); // N - 1
}

TEST(StatAccumulator, MergeMatchesSequential)
{
    Rng rng(21);
    StatAccumulator whole, part1, part2;
    for (int i = 0; i < 1000; ++i) {
        double v = rng.normal(3.0, 2.0);
        whole.add(v);
        (i < 400 ? part1 : part2).add(v);
    }
    part1.merge(part2);
    EXPECT_EQ(part1.count(), whole.count());
    EXPECT_NEAR(part1.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(part1.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(part1.min(), whole.min());
    EXPECT_DOUBLE_EQ(part1.max(), whole.max());
}

TEST(StatAccumulator, MergeWithEmpty)
{
    StatAccumulator a, b;
    a.add(1.0);
    a.add(2.0);
    StatAccumulator before = a;
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), before.mean());
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(PercentileTracker, Median)
{
    PercentileTracker tracker;
    for (double v : {5.0, 1.0, 3.0, 2.0, 4.0})
        tracker.add(v);
    EXPECT_DOUBLE_EQ(tracker.median(), 3.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(100.0), 5.0);
}

TEST(PercentileTracker, Interpolates)
{
    PercentileTracker tracker;
    tracker.add(0.0);
    tracker.add(10.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(50.0), 5.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(25.0), 2.5);
}

TEST(PercentileTrackerDeathTest, EmptyPanics)
{
    PercentileTracker tracker;
    EXPECT_DEATH(tracker.percentile(50.0), "empty");
}

TEST(Pearson, PerfectPositive)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero)
{
    std::vector<double> xs = {1, 2, 3};
    std::vector<double> ys = {7, 7, 7};
    EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Pearson, IndependentNearZero)
{
    Rng rng(22);
    std::vector<double> xs, ys;
    for (int i = 0; i < 20000; ++i) {
        xs.push_back(rng.normal());
        ys.push_back(rng.normal());
    }
    EXPECT_NEAR(pearson(xs, ys), 0.0, 0.03);
}

TEST(Pearson, InvariantToAffineTransforms)
{
    Rng rng(23);
    std::vector<double> xs, ys, xs2, ys2;
    for (int i = 0; i < 500; ++i) {
        double x = rng.normal();
        double y = 0.5 * x + rng.normal(0.0, 0.3);
        xs.push_back(x);
        ys.push_back(y);
        xs2.push_back(3.0 * x + 10.0);
        ys2.push_back(-2.0 * y + 1.0);
    }
    // Scaling flips sign with negative scale but keeps magnitude.
    EXPECT_NEAR(std::fabs(pearson(xs, ys)),
                std::fabs(pearson(xs2, ys2)), 1e-9);
}

TEST(RelativeError, MeanAbsolute)
{
    std::vector<double> pred = {110.0, 90.0};
    std::vector<double> target = {100.0, 100.0};
    EXPECT_DOUBLE_EQ(meanAbsoluteRelativeError(pred, target), 10.0);
}

TEST(RelativeError, SignedDirection)
{
    std::vector<double> over = {110.0, 120.0};
    std::vector<double> under = {90.0, 80.0};
    std::vector<double> target = {100.0, 100.0};
    EXPECT_GT(meanSignedRelativeError(over, target), 0.0);
    EXPECT_LT(meanSignedRelativeError(under, target), 0.0);
}

TEST(RelativeError, SkipsTinyTargets)
{
    std::vector<double> pred = {5.0, 110.0};
    std::vector<double> target = {0.0, 100.0};
    // The zero target is skipped entirely.
    EXPECT_DOUBLE_EQ(meanAbsoluteRelativeError(pred, target), 10.0);
}

TEST(RelativeError, StddevOfConstantErrorIsZero)
{
    std::vector<double> pred = {110.0, 220.0};
    std::vector<double> target = {100.0, 200.0};
    EXPECT_NEAR(stddevAbsoluteRelativeError(pred, target), 0.0, 1e-12);
}

TEST(MeanAndStddev, Basics)
{
    std::vector<double> xs = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.0);
    EXPECT_NEAR(stddev(xs), std::sqrt(2.0 / 3.0), 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

} // namespace
} // namespace geo
