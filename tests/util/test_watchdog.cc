/**
 * @file
 * Tests for the cooperative phase watchdog: deadline arithmetic,
 * one-shot firing per phase, token behavior across phases, and
 * worker-thread visibility of the cancel flag under ThreadPool load.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <vector>

#include "util/metrics.hh"
#include "util/thread_pool.hh"
#include "util/watchdog.hh"

namespace geo {
namespace util {
namespace {

TEST(CancelToken, StartsClearAndLatchesUntilReset)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    token.cancel();
    EXPECT_TRUE(token.cancelled());
    token.cancel(); // idempotent
    EXPECT_TRUE(token.cancelled());
    token.reset();
    EXPECT_FALSE(token.cancelled());
}

TEST(Watchdog, DoesNotFireWithinBudget)
{
    Watchdog dog;
    dog.beginPhase("train", 100.0, 10.0);
    EXPECT_FALSE(dog.poll(100.0));
    EXPECT_FALSE(dog.poll(109.9));
    EXPECT_FALSE(dog.poll(110.0)); // boundary is inclusive
    EXPECT_FALSE(dog.token().cancelled());
    EXPECT_EQ(dog.overruns(), 0u);
    dog.endPhase();
}

TEST(Watchdog, FiresOnceAndLatchesForThePhase)
{
    Watchdog dog;
    dog.beginPhase("migrate", 0.0, 5.0);
    EXPECT_FALSE(dog.poll(5.0));
    EXPECT_TRUE(dog.poll(5.1));
    EXPECT_TRUE(dog.firedThisPhase());
    EXPECT_TRUE(dog.token().cancelled());
    EXPECT_EQ(dog.overruns(), 1u);
    // Later polls keep reporting the overrun without re-counting it.
    EXPECT_TRUE(dog.poll(100.0));
    EXPECT_EQ(dog.overruns(), 1u);
    dog.endPhase();
    EXPECT_STREQ(dog.phase(), "");
}

TEST(Watchdog, ZeroBudgetDisablesTheDeadline)
{
    Watchdog dog;
    dog.beginPhase("propose", 0.0, 0.0);
    EXPECT_FALSE(dog.poll(1e12));
    EXPECT_FALSE(dog.token().cancelled());
    dog.endPhase();
    EXPECT_EQ(dog.overruns(), 0u);
}

TEST(Watchdog, BeginPhaseResetsTheTokenAndTheLatch)
{
    Watchdog dog;
    dog.beginPhase("migrate", 0.0, 1.0);
    EXPECT_TRUE(dog.poll(2.0));
    dog.endPhase();

    dog.beginPhase("migrate", 10.0, 1.0);
    EXPECT_FALSE(dog.firedThisPhase());
    EXPECT_FALSE(dog.token().cancelled());
    EXPECT_FALSE(dog.poll(10.5));
    dog.endPhase();
    EXPECT_EQ(dog.overruns(), 1u);
}

TEST(Watchdog, PollOutsideAPhaseIsFalse)
{
    Watchdog dog;
    EXPECT_FALSE(dog.poll(1e9));
    dog.beginPhase("train", 0.0, 1.0);
    dog.endPhase();
    EXPECT_FALSE(dog.poll(1e9));
}

TEST(Watchdog, OverrunCountIsRestorable)
{
    Watchdog dog;
    dog.setOverruns(7);
    EXPECT_EQ(dog.overruns(), 7u);
    dog.beginPhase("migrate", 0.0, 1.0);
    EXPECT_TRUE(dog.poll(2.0));
    EXPECT_EQ(dog.overruns(), 8u);
    dog.endPhase();
}

TEST(Watchdog, RecordsDeadlineExceededMetric)
{
    auto &registry = MetricRegistry::global();
    Counter &metric = registry.counter("guardrails.deadline_exceeded");
    uint64_t before = metric.value();
    Watchdog dog;
    dog.beginPhase("migrate", 0.0, 1.0);
    EXPECT_TRUE(dog.poll(5.0));
    dog.endPhase();
    EXPECT_EQ(metric.value(), before + 1);
}

// Worker tasks spin on token().cancelled() while the owning thread
// drives poll(): every task must observe the cancellation and bail.
TEST(Watchdog, CancellationIsVisibleToThreadPoolWorkers)
{
    ThreadPool pool(4);
    Watchdog dog;
    dog.beginPhase("train", 0.0, 10.0);

    std::atomic<int> started{0};
    std::atomic<int> bailed{0};
    std::vector<std::future<void>> futures;
    const int kTasks = 16;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        futures.push_back(pool.submit([&dog, &started, &bailed]() {
            started.fetch_add(1);
            // Cooperative loop: do "work" until the watchdog cancels.
            while (!dog.token().cancelled()) {
            }
            bailed.fetch_add(1);
        }));
    }
    // Let the sim clock blow the budget once the first wave of tasks
    // is spinning (only `workers` tasks run at a time; the queued rest
    // observe the cancellation as soon as they start).
    while (started.load() == 0) {
    }
    EXPECT_TRUE(dog.poll(10.1));
    for (auto &f : futures)
        f.get();
    dog.endPhase();
    EXPECT_EQ(bailed.load(), kTasks);
    EXPECT_EQ(dog.overruns(), 1u);
}

} // namespace
} // namespace util
} // namespace geo
