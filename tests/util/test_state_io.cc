/**
 * @file
 * Tests for the keyed text state serialization: every type must
 * round-trip bit-exactly, and a reader hitting unexpected keys or
 * malformed values must latch failure instead of crashing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/random.hh"
#include "util/state_io.hh"
#include "util/stats.hh"

namespace geo {
namespace util {
namespace {

TEST(StateIo, ScalarRoundTripIsExact)
{
    std::ostringstream os;
    StateWriter w(os);
    w.u64("a", 18446744073709551615ull);
    w.i64("b", -42);
    w.f64("c", 0.1); // not representable; must still round-trip
    w.f64("d", -1.7976931348623157e308);
    w.f64("e", 5e-324); // smallest denormal
    w.boolean("f", true);
    w.str("g", "two words\nand a newline");

    std::istringstream is(os.str());
    StateReader r(is);
    EXPECT_EQ(r.u64("a"), 18446744073709551615ull);
    EXPECT_EQ(r.i64("b"), -42);
    EXPECT_EQ(r.f64("c"), 0.1);
    EXPECT_EQ(r.f64("d"), -1.7976931348623157e308);
    EXPECT_EQ(r.f64("e"), 5e-324);
    EXPECT_TRUE(r.boolean("f"));
    EXPECT_EQ(r.str("g"), "two words\nand a newline");
    EXPECT_TRUE(r.ok());
}

TEST(StateIo, RngStateRoundTripContinuesIdentically)
{
    Rng rng(1234);
    rng.normal(0.0, 1.0); // leave a cached Box-Muller half-step
    std::ostringstream os;
    StateWriter w(os);
    w.rng("r", rng);

    Rng restored(1); // different seed; state overwritten below
    std::istringstream is(os.str());
    StateReader r(is);
    restored.setState(r.rng("r"));
    ASSERT_TRUE(r.ok());
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(rng(), restored());
        EXPECT_EQ(rng.normal(0.0, 1.0), restored.normal(0.0, 1.0));
    }
}

TEST(StateIo, StatAccumulatorRoundTrip)
{
    StatAccumulator acc;
    for (double v : {3.7, -1.0, 0.0, 99.5})
        acc.add(v);
    std::ostringstream os;
    StateWriter w(os);
    w.stat("s", acc);

    std::istringstream is(os.str());
    StateReader r(is);
    StatAccumulator restored;
    restored.restore(r.stat("s"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(restored.count(), acc.count());
    EXPECT_EQ(restored.mean(), acc.mean());
    EXPECT_EQ(restored.variance(), acc.variance());
    EXPECT_EQ(restored.min(), acc.min());
    EXPECT_EQ(restored.max(), acc.max());
}

TEST(StateIo, VectorRoundTrip)
{
    std::vector<double> v = {1.0, -0.25, 3.14159265358979, 1e-300};
    std::ostringstream os;
    StateWriter w(os);
    w.f64Vec("v", v);
    w.f64Vec("empty", {});

    std::istringstream is(os.str());
    StateReader r(is);
    EXPECT_EQ(r.f64Vec("v"), v);
    EXPECT_TRUE(r.f64Vec("empty").empty());
    EXPECT_TRUE(r.ok());
}

TEST(StateIo, KeyMismatchLatchesFailure)
{
    std::ostringstream os;
    StateWriter w(os);
    w.u64("expected", 1);
    w.u64("second", 2);

    std::istringstream is(os.str());
    StateReader r(is);
    EXPECT_EQ(r.u64("wrong"), 0u);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.error().empty());
    // Sticky: later reads return defaults even for keys that exist.
    EXPECT_EQ(r.u64("second"), 0u);
}

TEST(StateIo, TruncatedStreamFails)
{
    std::ostringstream os;
    StateWriter w(os);
    w.u64("only", 7);

    std::istringstream is(os.str());
    StateReader r(is);
    EXPECT_EQ(r.u64("only"), 7u);
    EXPECT_TRUE(r.ok());
    r.u64("missing");
    EXPECT_FALSE(r.ok());
}

TEST(StateIo, CallerValidationFailure)
{
    std::istringstream is("");
    StateReader r(is);
    r.fail("schedule size changed");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.error(), "schedule size changed");
}

} // namespace
} // namespace util
} // namespace geo
