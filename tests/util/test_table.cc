/**
 * @file
 * Unit tests for the text-table renderer.
 */

#include <gtest/gtest.h>

#include "util/table.hh"

namespace geo {
namespace {

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable table("My title");
    table.setHeader({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"beta", "22"});
    std::string out = table.render();
    EXPECT_NE(out.find("My title"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable table;
    table.setHeader({"a", "b"});
    table.addRow({"looooong", "x"});
    table.addRow({"s", "y"});
    std::string out = table.render();
    // Both data rows start their second column at the same offset.
    size_t line1 = out.find("looooong");
    size_t x_pos = out.find('x', line1) - out.rfind('\n', line1);
    size_t line2 = out.find("s", out.find('x'));
    size_t y_pos = out.find('y', line2) - out.rfind('\n', line2);
    EXPECT_EQ(x_pos, y_pos);
}

TEST(TextTable, MeanStdFormat)
{
    EXPECT_EQ(TextTable::meanStd(18.88, 16.92), "18.88 +/- 16.92");
    EXPECT_EQ(TextTable::meanStd(1.0, 0.5, 1), "1.0 +/- 0.5");
}

TEST(TextTable, NumFormat)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(5.0, 0), "5");
}

TEST(TextTable, RowCount)
{
    TextTable table;
    EXPECT_EQ(table.rowCount(), 0u);
    table.addRow({"x"});
    table.addRow({"y"});
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTable, EmptyTableRendersNothing)
{
    TextTable table;
    EXPECT_EQ(table.render(), "");
}

TEST(TextTable, RaggedRowsTolerated)
{
    TextTable table;
    table.setHeader({"a", "b", "c"});
    table.addRow({"1"});
    table.addRow({"1", "2", "3", "4"});
    std::string out = table.render();
    EXPECT_NE(out.find("4"), std::string::npos);
}

} // namespace
} // namespace geo
