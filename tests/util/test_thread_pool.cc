/**
 * @file
 * Tests for the worker pool behind the parallel inference engine:
 * futures from submit(), the parallelFor determinism contract (chunk
 * boundaries depend only on (count, grain), never on worker count),
 * and deadlock freedom for nested submission from a worker thread.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "util/random.hh"
#include "util/thread_pool.hh"

namespace geo {
namespace util {
namespace {

TEST(ThreadPool, SubmitReturnsFutureValue)
{
    ThreadPool pool(2);
    std::future<int> value = pool.submit([]() { return 41 + 1; });
    EXPECT_EQ(value.get(), 42);
}

TEST(ThreadPool, SubmitManyAllComplete)
{
    ThreadPool pool(4);
    std::vector<std::future<size_t>> futures;
    for (size_t i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (size_t i = 0; i < 64; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(1);
    std::future<int> value = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(value.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    for (size_t workers : {1u, 2u, 8u}) {
        ThreadPool pool(workers);
        std::vector<std::atomic<int>> hits(103);
        pool.parallelFor(103, 7, [&](size_t, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i)
                hits[i].fetch_add(1);
        });
        for (size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ParallelForChunkBoundariesIndependentOfWorkers)
{
    // The determinism contract: (chunk, begin, end) triples are a pure
    // function of (count, grain).
    auto boundaries = [](size_t workers) {
        ThreadPool pool(workers);
        std::mutex mutex;
        std::set<std::tuple<size_t, size_t, size_t>> seen;
        pool.parallelFor(1000, 13,
                         [&](size_t chunk, size_t begin, size_t end) {
                             std::lock_guard<std::mutex> lock(mutex);
                             seen.insert({chunk, begin, end});
                         });
        return seen;
    };
    auto one = boundaries(1);
    EXPECT_EQ(boundaries(2), one);
    EXPECT_EQ(boundaries(8), one);
}

TEST(ThreadPool, ChunkedReductionBitIdenticalAcrossWorkerCounts)
{
    // Per-chunk pseudo-random work reduced in chunk order must not
    // depend on scheduling. This is the pattern the parallel GEMM and
    // the batched scorer rely on.
    auto reduce = [](size_t workers) {
        ThreadPool pool(workers);
        std::vector<double> partial(16, 0.0);
        pool.parallelFor(
            1024, 64, [&](size_t chunk, size_t begin, size_t end) {
                Rng rng(static_cast<uint64_t>(chunk) ^ 0x9e3779b9ull);
                double sum = 0.0;
                for (size_t i = begin; i < end; ++i)
                    sum += rng.uniform(0.0, 1.0) *
                           static_cast<double>(i + 1);
                partial[chunk] = sum;
            });
        // Fixed left-to-right accumulation order.
        double total = 0.0;
        for (double value : partial)
            total += value;
        return total;
    };
    double serial = reduce(1);
    EXPECT_EQ(reduce(2), serial);
    EXPECT_EQ(reduce(8), serial);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(0, 4,
                     [&](size_t, size_t, size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, NestedSubmitFromWorkerDoesNotDeadlock)
{
    // table1_2 submits scoreModelAveraged tasks whose bodies submit
    // per-seed trials to the same pool: the inner tasks must run
    // inline on the worker instead of waiting for a free slot.
    ThreadPool pool(1); // single worker = the pathological case
    std::future<int> outer = pool.submit([&pool]() {
        std::future<int> inner = pool.submit([]() { return 7; });
        return inner.get() + 1;
    });
    EXPECT_EQ(outer.get(), 8);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(1);
    std::future<double> outer = pool.submit([&pool]() {
        double sum = 0.0;
        pool.parallelFor(10, 3, [&](size_t, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i)
                sum += static_cast<double>(i);
        });
        return sum;
    });
    EXPECT_DOUBLE_EQ(outer.get(), 45.0);
}

TEST(ThreadPool, GlobalPoolIsSingleton)
{
    EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
    EXPECT_GE(ThreadPool::global().workerCount(), 1u);
}

} // namespace
} // namespace util
} // namespace geo
