/**
 * @file
 * Tests for the ASCII chart renderer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/ascii_chart.hh"

namespace geo {
namespace {

TEST(AsciiChart, EmptySeries)
{
    EXPECT_EQ(asciiChart({}), "(no finite data)\n");
    EXPECT_EQ(asciiChartMulti({}), "(no data)\n");
}

TEST(AsciiChart, RendersExpectedRowCount)
{
    AsciiChartOptions options;
    options.width = 20;
    options.height = 5;
    std::string out = asciiChart({1, 2, 3, 4, 5}, options);
    // 5 plot rows + 1 axis row.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(AsciiChart, RisingSeriesRisesOnCanvas)
{
    AsciiChartOptions options;
    options.width = 10;
    options.height = 8;
    std::string out = asciiChart({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, options);
    // The first data column's glyph must be lower (later line) than
    // the last column's.
    std::vector<std::string> lines;
    std::istringstream is(out);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    int first_row = -1, last_row = -1;
    for (int r = 0; r < 8; ++r) {
        std::string plot = lines[r].substr(11);
        if (plot.front() == '*')
            first_row = r;
        if (plot.back() == '*')
            last_row = r;
    }
    ASSERT_NE(first_row, -1);
    ASSERT_NE(last_row, -1);
    EXPECT_GT(first_row, last_row); // row 0 is the top
}

TEST(AsciiChart, ConstantSeriesDoesNotCrash)
{
    std::string out = asciiChart({5, 5, 5, 5});
    EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChart, YLabelShown)
{
    AsciiChartOptions options;
    options.yLabel = "GB/s";
    std::string out = asciiChart({1, 2}, options);
    EXPECT_EQ(out.rfind("GB/s", 0), 0u);
}

TEST(AsciiChart, MarksOnAxis)
{
    AsciiChartOptions options;
    options.width = 10;
    options.height = 4;
    options.marks = {50};
    std::vector<double> series(100, 1.0);
    std::string out = asciiChart(series, options);
    EXPECT_NE(out.find('^'), std::string::npos);
}

TEST(AsciiChart, MultiSeriesLegendAndGlyphs)
{
    std::vector<std::pair<std::string, std::vector<double>>> series = {
        {"alpha", {1, 2, 3}},
        {"beta", {3, 2, 1}},
    };
    std::string out = asciiChartMulti(series);
    EXPECT_NE(out.find("* alpha"), std::string::npos);
    EXPECT_NE(out.find("o beta"), std::string::npos);
    EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiChart, LongSeriesResampled)
{
    AsciiChartOptions options;
    options.width = 16;
    options.height = 4;
    std::vector<double> series(10000);
    for (size_t i = 0; i < series.size(); ++i)
        series[i] = std::sin(static_cast<double>(i) / 500.0);
    std::string out = asciiChart(series, options);
    // No line may exceed label + width.
    std::istringstream is(out);
    std::string line;
    while (std::getline(is, line))
        EXPECT_LE(line.size(), 11u + 16u);
}

TEST(AsciiChart, NonFiniteValuesSkipped)
{
    std::vector<double> series = {1.0, std::nan(""), 2.0, INFINITY, 3.0};
    EXPECT_NO_FATAL_FAILURE(asciiChart(series));
}

TEST(AsciiChartDeathTest, DegenerateCanvas)
{
    AsciiChartOptions options;
    options.width = 1;
    EXPECT_DEATH(asciiChart({1.0}, options), "width");
}

} // namespace
} // namespace geo
