/**
 * @file
 * Unit tests for the metric registry: bucket boundaries, quantile
 * estimation, snapshot export round-trips and concurrent recording.
 */

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "minijson.hh"
#include "util/metrics.hh"

namespace geo {
namespace {

using util::Counter;
using util::Gauge;
using util::Histogram;
using util::HistogramSnapshot;
using util::MetricRegistry;

TEST(Counter, AddAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, LastWriteWins)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(-1.25);
    EXPECT_EQ(g.value(), -1.25);
    g.reset();
    EXPECT_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketBoundaries)
{
    // Non-positive and sub-minimum values land in the underflow bucket.
    EXPECT_EQ(Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(-5.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(std::ldexp(1.0, -40)), 0u);
    EXPECT_EQ(Histogram::bucketIndex(std::nan("")), 0u);

    // The first real bucket starts at 2^kMinExp.
    size_t first = Histogram::bucketIndex(std::ldexp(1.0, Histogram::kMinExp));
    EXPECT_EQ(first, 1u);
    EXPECT_EQ(Histogram::bucketLowerBound(first),
              std::ldexp(1.0, Histogram::kMinExp));

    // Powers of two are each bucket's inclusive lower bound; the value
    // just below belongs to the previous bucket.
    for (double v : {1.0, 2.0, 1024.0, 1e6}) {
        size_t i = Histogram::bucketIndex(v);
        EXPECT_GE(v, Histogram::bucketLowerBound(i)) << v;
        EXPECT_LT(v, Histogram::bucketUpperBound(i)) << v;
        EXPECT_EQ(Histogram::bucketIndex(
                      Histogram::bucketLowerBound(i)), i)
            << v;
    }
    EXPECT_EQ(Histogram::bucketIndex(2.0),
              Histogram::bucketIndex(3.999) );
    EXPECT_NE(Histogram::bucketIndex(1.999), Histogram::bucketIndex(2.0));

    // Values beyond 2^kMaxExp overflow into the last bucket, whose
    // upper bound is infinite.
    size_t last = Histogram::bucketIndex(std::ldexp(1.0, Histogram::kMaxExp + 3));
    EXPECT_EQ(last, Histogram::kBucketCount - 1);
    EXPECT_TRUE(std::isinf(Histogram::bucketUpperBound(last)));
}

TEST(Histogram, SnapshotBasics)
{
    Histogram h;
    HistogramSnapshot empty = h.snapshot();
    EXPECT_EQ(empty.count, 0u);
    EXPECT_EQ(empty.p50, 0.0);

    for (int i = 1; i <= 100; ++i)
        h.record(static_cast<double>(i));
    HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 100u);
    EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 100.0);
    // Log-bucketed estimates: generous tolerances, but the order
    // statistics must land in the right region and stay ordered.
    EXPECT_GT(snap.p50, 16.0);
    EXPECT_LT(snap.p50, 64.0);
    EXPECT_GE(snap.p95, snap.p50);
    EXPECT_GE(snap.p99, snap.p95);
    EXPECT_LE(snap.p99, snap.max);
}

TEST(Histogram, QuantileClampsToObservedRange)
{
    Histogram h;
    // All mass in one bucket: every quantile must stay inside [lo, hi].
    h.record(5.0);
    h.record(5.5);
    h.record(6.0);
    EXPECT_GE(h.quantile(0.0), 5.0);
    EXPECT_LE(h.quantile(1.0), 6.0);
    EXPECT_GE(h.quantile(0.5), 5.0);
    EXPECT_LE(h.quantile(0.5), 6.0);
}

TEST(Histogram, SingleValueQuantiles)
{
    Histogram h;
    h.record(42.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 42.0);
    HistogramSnapshot snap = h.snapshot();
    EXPECT_DOUBLE_EQ(snap.min, 42.0);
    EXPECT_DOUBLE_EQ(snap.max, 42.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h;
    h.record(1.0);
    h.record(1e9);
    h.reset();
    HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.sum, 0.0);
    EXPECT_EQ(snap.max, 0.0);
}

TEST(Histogram, ConcurrentRecordingLosesNothing)
{
    Histogram h;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t]() {
            for (int i = 0; i < kPerThread; ++i)
                h.record(static_cast<double>(t + 1));
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count,
              static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(kThreads));
    EXPECT_DOUBLE_EQ(snap.sum, (1.0 + 2.0 + 3.0 + 4.0) * kPerThread);
}

TEST(MetricRegistry, HandleAddressesAreStable)
{
    MetricRegistry registry;
    Counter &a = registry.counter("x.count");
    for (int i = 0; i < 100; ++i)
        registry.counter("filler." + std::to_string(i));
    EXPECT_EQ(&a, &registry.counter("x.count"));
    a.inc();
    EXPECT_EQ(registry.counterValue("x.count"), 1u);
    EXPECT_EQ(registry.counterValue("never.registered"), 0u);
}

TEST(MetricRegistry, NamesAreIndependentPerKind)
{
    MetricRegistry registry;
    registry.counter("same.name").add(7);
    registry.gauge("same.name").set(1.5);
    registry.histogram("same.name").record(3.0);
    EXPECT_EQ(registry.counterValue("same.name"), 7u);
    EXPECT_EQ(registry.gauges().size(), 1u);
    EXPECT_EQ(registry.histograms().size(), 1u);
}

TEST(MetricRegistry, JsonSnapshotRoundTrips)
{
    MetricRegistry registry;
    registry.counter("pipeline.cycles").add(12);
    registry.counter("pipeline.moves").add(3);
    registry.gauge("model.val_mae").set(12.75);
    Histogram &h = registry.histogram("predict.ms");
    h.record(0.5);
    h.record(2.0);
    h.record(8.0);

    std::string json = registry.toJson();
    ASSERT_TRUE(testjson::validJson(json)) << json;
    EXPECT_NE(json.find("\"schema\": \"geo-metrics-1\""),
              std::string::npos);
    EXPECT_EQ(testjson::numberAfterKey(json, "pipeline.cycles"), 12.0);
    EXPECT_EQ(testjson::numberAfterKey(json, "pipeline.moves"), 3.0);
    EXPECT_EQ(testjson::numberAfterKey(json, "model.val_mae"), 12.75);
    // Histogram block: count and sum must round-trip exactly.
    EXPECT_EQ(testjson::numberAfterKey(json, "count"), 3.0);
    EXPECT_EQ(testjson::numberAfterKey(json, "sum"), 10.5);
}

TEST(MetricRegistry, EmptyRegistryIsValidJson)
{
    MetricRegistry registry;
    EXPECT_TRUE(testjson::validJson(registry.toJson()));
}

TEST(MetricRegistry, PrometheusExposition)
{
    MetricRegistry registry;
    registry.counter("control.bytes-moved").add(1024);
    registry.gauge("drl.val_mae_pct").set(9.5);
    registry.histogram("drl.train_ms").record(100.0);

    std::string prom = registry.toPrometheus();
    // Dots and dashes become underscores under the geo_ prefix.
    EXPECT_NE(prom.find("# TYPE geo_control_bytes_moved counter"),
              std::string::npos);
    EXPECT_NE(prom.find("geo_control_bytes_moved 1024"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE geo_drl_val_mae_pct gauge"),
              std::string::npos);
    EXPECT_NE(prom.find("geo_drl_train_ms{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(prom.find("geo_drl_train_ms_count 1"), std::string::npos);
}

TEST(MetricRegistry, PrometheusHelpAndType)
{
    MetricRegistry registry;
    registry.counter("geomancy.cycles").inc();
    registry.setHelp("geomancy.cycles",
                     "Decision cycles completed by the pipeline");
    registry.gauge("ledger.dev0.abs_err").set(0.25);

    std::string prom = registry.toPrometheus();
    size_t help = prom.find("# HELP geo_geomancy_cycles "
                            "Decision cycles completed by the pipeline");
    size_t type = prom.find("# TYPE geo_geomancy_cycles counter");
    size_t sample = prom.find("geo_geomancy_cycles 1");
    ASSERT_NE(help, std::string::npos) << prom;
    ASSERT_NE(type, std::string::npos) << prom;
    ASSERT_NE(sample, std::string::npos) << prom;
    // Exposition order within a family: HELP, then TYPE, then samples.
    EXPECT_LT(help, type);
    EXPECT_LT(type, sample);
    // A metric nobody registered help for still gets a HELP line.
    EXPECT_NE(prom.find("# HELP geo_ledger_dev0_abs_err "),
              std::string::npos);
}

TEST(MetricRegistry, PrometheusHelpIsEscaped)
{
    MetricRegistry registry;
    registry.counter("a.b").inc();
    registry.setHelp("a.b", "line one\nback\\slash");
    std::string prom = registry.toPrometheus();
    EXPECT_NE(prom.find("# HELP geo_a_b line one\\nback\\\\slash"),
              std::string::npos)
        << prom;
}

TEST(MetricRegistry, PromEscapeLabelValue)
{
    EXPECT_EQ(MetricRegistry::promEscapeLabel("plain"), "plain");
    EXPECT_EQ(MetricRegistry::promEscapeLabel("a\\b"), "a\\\\b");
    EXPECT_EQ(MetricRegistry::promEscapeLabel("say \"hi\""),
              "say \\\"hi\\\"");
    EXPECT_EQ(MetricRegistry::promEscapeLabel("two\nlines"),
              "two\\nlines");
}

TEST(MetricRegistry, PromEscapeHelpKeepsQuotes)
{
    // HELP text escapes backslash and newline but NOT double quotes —
    // quotes are only special inside label values.
    EXPECT_EQ(MetricRegistry::promEscapeHelp("a \"quoted\" word"),
              "a \"quoted\" word");
    EXPECT_EQ(MetricRegistry::promEscapeHelp("a\\b\nc"), "a\\\\b\\nc");
}

TEST(MetricRegistry, ResetZeroesButKeepsRegistrations)
{
    MetricRegistry registry;
    Counter &c = registry.counter("a.b");
    c.add(5);
    registry.gauge("g").set(2.0);
    registry.histogram("h").record(1.0);
    registry.reset();
    EXPECT_EQ(registry.counterValue("a.b"), 0u);
    EXPECT_EQ(&c, &registry.counter("a.b")); // handle survived
    EXPECT_EQ(registry.gauges()[0].second, 0.0);
    EXPECT_EQ(registry.histograms()[0].second.count, 0u);
}

TEST(MetricRegistry, GlobalIsASingleton)
{
    EXPECT_EQ(&MetricRegistry::global(), &MetricRegistry::global());
}

} // namespace
} // namespace geo
